package workflow

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"dayu/internal/hdf5"
	"dayu/internal/sim"
	"dayu/internal/trace"
	"dayu/internal/tracer"
)

// twoStageSpec: a producer writes data.h5, a consumer reads it back and
// verifies contents, proving cross-task persistence.
func twoStageSpec(t *testing.T, payload []byte) Spec {
	return Spec{
		Name: "two-stage",
		Stages: []Stage{
			{Name: "produce", Tasks: []Task{{
				Name: "producer",
				Fn: func(tc *TaskContext) error {
					f, err := tc.Create("data.h5")
					if err != nil {
						return err
					}
					ds, err := f.Root().CreateDataset("payload", hdf5.Uint8, []int64{int64(len(payload))}, nil)
					if err != nil {
						return err
					}
					if err := ds.WriteAll(payload); err != nil {
						return err
					}
					return f.Close()
				},
			}}},
			{Name: "consume", Tasks: []Task{{
				Name: "consumer",
				Fn: func(tc *TaskContext) error {
					f, err := tc.Open("data.h5")
					if err != nil {
						return err
					}
					ds, err := f.OpenDatasetPath("/payload")
					if err != nil {
						return err
					}
					got, err := ds.ReadAll()
					if err != nil {
						return err
					}
					if !bytes.Equal(got, payload) {
						t.Error("payload corrupted across tasks")
					}
					return f.Close()
				},
			}}},
		},
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{},
		{Name: "x"},
		{Name: "x", Stages: []Stage{{Name: "", Tasks: []Task{{Name: "t", Fn: func(*TaskContext) error { return nil }}}}}},
		{Name: "x", Stages: []Stage{{Name: "s"}}},
		{Name: "x", Stages: []Stage{{Name: "s", Tasks: []Task{{Name: "", Fn: func(*TaskContext) error { return nil }}}}}},
		{Name: "x", Stages: []Stage{{Name: "s", Tasks: []Task{{Name: "t"}}}}},
		{Name: "x", Stages: []Stage{{Name: "s", Tasks: []Task{
			{Name: "t", Fn: func(*TaskContext) error { return nil }},
			{Name: "t", Fn: func(*TaskContext) error { return nil }},
		}}}},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}

func TestRunTwoStageWorkflow(t *testing.T) {
	payload := bytes.Repeat([]byte{0x42}, 64<<10)
	eng, err := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: 2}, nil, tracer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(twoStageSpec(t, payload))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 2 {
		t.Fatalf("stages = %d", len(res.Stages))
	}
	if res.Total() <= 0 {
		t.Error("zero total time")
	}
	for _, s := range res.Stages {
		if s.Time <= 0 {
			t.Errorf("stage %s has zero time", s.Name)
		}
	}
	// Traces were captured per task.
	if len(res.Traces) != 2 {
		t.Fatalf("traces = %d", len(res.Traces))
	}
	if res.Traces[0].Task != "producer" || res.Traces[1].Task != "consumer" {
		t.Errorf("trace tasks = %s %s", res.Traces[0].Task, res.Traces[1].Task)
	}
	if len(res.Traces[1].Files) != 1 || res.Traces[1].Files[0].BytesRead < int64(len(payload)) {
		t.Error("consumer trace missing read volume")
	}
	// Manifest mirrors the spec.
	if res.Manifest.Workflow != "two-stage" || len(res.Manifest.TaskOrder) != 2 {
		t.Errorf("manifest = %+v", res.Manifest)
	}
	// Op logs captured.
	if len(res.OpsByTask["producer"]["data.h5"]) == 0 {
		t.Error("producer op log empty")
	}
	// The engine retains the file.
	if eng.FileSize("data.h5") == 0 {
		t.Error("file store empty")
	}
	if names := eng.FileNames(); len(names) != 1 || names[0] != "data.h5" {
		t.Errorf("file names = %v", names)
	}
}

func TestPlacementSpeedsUpIO(t *testing.T) {
	payload := bytes.Repeat([]byte{7}, 256<<10)
	run := func(plan *Plan) time.Duration {
		eng, err := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: 1}, plan, tracer.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(twoStageSpec(t, payload))
		if err != nil {
			t.Fatal(err)
		}
		return res.StageTime("consume")
	}
	baseline := run(nil) // NFS default
	nvme := run(&Plan{Placements: map[string]Placement{"data.h5": {Device: "nvme", Node: 0}}})
	if nvme >= baseline {
		t.Errorf("nvme placement (%v) not faster than NFS baseline (%v)", nvme, baseline)
	}
}

func TestRemoteLocalAccessPaysNetwork(t *testing.T) {
	payload := bytes.Repeat([]byte{7}, 64<<10)
	run := func(node int) time.Duration {
		plan := &Plan{
			Placements: map[string]Placement{"data.h5": {Device: "nvme", Node: node}},
			NodeOf:     map[string]int{"producer": 0, "consumer": 0},
		}
		eng, err := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: 2}, plan, tracer.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(twoStageSpec(t, payload))
		if err != nil {
			t.Fatal(err)
		}
		return res.StageTime("consume")
	}
	local := run(0)
	remote := run(1)
	if remote <= local {
		t.Errorf("remote access (%v) not slower than local (%v)", remote, local)
	}
}

func TestStageInOutPseudoStages(t *testing.T) {
	payload := bytes.Repeat([]byte{7}, 128<<10)
	plan := &Plan{
		Placements: map[string]Placement{"data.h5": {Device: "nvme", Node: 0}},
		StageIn:    map[string][]string{"consume": {"data.h5"}},
		StageOut:   map[string][]string{"consume": {"data.h5"}},
	}
	eng, err := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: 1}, plan, tracer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(twoStageSpec(t, payload))
	if err != nil {
		t.Fatal(err)
	}
	if res.StageTime("stage-in:consume") <= 0 {
		t.Error("stage-in pseudo stage missing")
	}
	if res.StageTime("stage-out:consume") <= 0 {
		t.Error("stage-out pseudo stage missing")
	}
	// Async stage-out leaves the critical path.
	plan.AsyncStageOut = true
	eng2, _ := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: 1}, plan, tracer.Config{})
	res2, err := eng2.Run(twoStageSpec(t, payload))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Total() >= res.Total() {
		t.Errorf("async stage-out (%v) not cheaper than sync (%v)", res2.Total(), res.Total())
	}
}

func TestContentionSlowsSharedStage(t *testing.T) {
	// N parallel tasks all writing to shared NFS contend; the same work
	// over node-local NVMe contends far less.
	mkSpec := func(n int) Spec {
		var tasks []Task
		for i := 0; i < n; i++ {
			name := "w" + string(rune('a'+i))
			tasks = append(tasks, Task{Name: name, Fn: func(tc *TaskContext) error {
				f, err := tc.Create("out-" + tc.Task() + ".h5")
				if err != nil {
					return err
				}
				ds, err := f.Root().CreateDataset("d", hdf5.Uint8, []int64{32 << 10}, nil)
				if err != nil {
					return err
				}
				return ds.WriteAll(make([]byte, 32<<10))
			}})
		}
		return Spec{Name: "fan", Stages: []Stage{{Name: "write", Tasks: tasks}}}
	}
	run := func(n int, plan *Plan) time.Duration {
		eng, err := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: 1}, plan, tracer.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(mkSpec(n))
		if err != nil {
			t.Fatal(err)
		}
		return res.StageTime("write")
	}
	one := run(1, nil)
	eight := run(8, nil)
	if eight <= one {
		t.Errorf("8-way contention (%v) not slower than 1-way (%v)", eight, one)
	}
	local := run(8, &Plan{DefaultPlacement: &Placement{Device: "nvme", Node: 0}})
	if local >= eight {
		t.Errorf("local nvme (%v) not faster than contended NFS (%v)", local, eight)
	}
}

func TestTaskErrorsPropagate(t *testing.T) {
	boom := errors.New("boom")
	spec := Spec{Name: "fail", Stages: []Stage{{Name: "s", Tasks: []Task{{
		Name: "bad", Fn: func(tc *TaskContext) error { return boom },
	}}}}}
	eng, _ := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: 1}, nil, tracer.Config{})
	if _, err := eng.Run(spec); !errors.Is(err, boom) {
		t.Errorf("error not propagated: %v", err)
	}
	// Opening a missing file errors cleanly.
	spec2 := Spec{Name: "missing", Stages: []Stage{{Name: "s", Tasks: []Task{{
		Name: "opener", Fn: func(tc *TaskContext) error {
			_, err := tc.Open("nope.h5")
			return err
		},
	}}}}}
	if _, err := eng.Run(spec2); err == nil {
		t.Error("missing file open succeeded")
	}
}

func TestComputeTimeCounted(t *testing.T) {
	spec := Spec{Name: "c", Stages: []Stage{{Name: "s", Tasks: []Task{{
		Name: "t", Compute: time.Second,
		Fn: func(tc *TaskContext) error {
			tc.Compute(2 * time.Second)
			tc.Compute(-time.Hour) // ignored
			return nil
		},
	}}}}}
	eng, _ := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: 1}, nil, tracer.Config{})
	res, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.StageTime("s"); got != 3*time.Second {
		t.Errorf("stage time = %v, want 3s", got)
	}
}

func TestPlanValidation(t *testing.T) {
	m := sim.MachineCPU
	bad := []*Plan{
		{Placements: map[string]Placement{"f": {Device: "warp-drive"}}},
		{Placements: map[string]Placement{"f": {Device: "nvme", Node: 5}}},
		{NodeOf: map[string]int{"t": 9}},
		{DefaultPlacement: &Placement{Device: "bogus"}},
	}
	for i, p := range bad {
		if p.Validate(m, 2) == nil {
			t.Errorf("bad plan %d validated", i)
		}
	}
	var nilPlan *Plan
	if nilPlan.Validate(m, 2) != nil {
		t.Error("nil plan rejected")
	}
	if _, err := NewEngine(Cluster{Machine: m, Nodes: 0}, nil, tracer.Config{}); err == nil {
		t.Error("zero-node cluster accepted")
	}
}

func TestWavesForOversubscribedStage(t *testing.T) {
	// More tasks than cores must take more waves (longer stage time).
	machine := sim.MachineCPU
	machine.CoresPerNode = 2
	mk := func(n int) Spec {
		var tasks []Task
		for i := 0; i < n; i++ {
			tasks = append(tasks, Task{
				Name: "t" + string(rune('a'+i)), Compute: time.Second,
				Fn: func(tc *TaskContext) error { return nil },
			})
		}
		return Spec{Name: "w", Stages: []Stage{{Name: "s", Tasks: tasks}}}
	}
	run := func(n int) time.Duration {
		eng, _ := NewEngine(Cluster{Machine: machine, Nodes: 1}, nil, tracer.Config{})
		res, err := eng.Run(mk(n))
		if err != nil {
			t.Fatal(err)
		}
		return res.StageTime("s")
	}
	if run(2) != time.Second {
		t.Error("single wave wrong")
	}
	if run(4) != 2*time.Second {
		t.Error("two waves wrong")
	}
}

func TestResultSaveTracesFormats(t *testing.T) {
	res := &Result{
		Workflow: "wf",
		Traces: []*trace.TaskTrace{
			{Task: "s0/a", StartNS: 1, EndNS: 2},
			{Task: "s0/b", StartNS: 2, EndNS: 3},
		},
		Manifest: &trace.Manifest{Workflow: "wf", TaskOrder: []string{"s0/a", "s0/b"}},
	}
	for _, format := range []trace.Format{trace.FormatJSON, trace.FormatBinary} {
		dir := filepath.Join(t.TempDir(), "traces")
		if err := res.SaveTraces(dir, format); err != nil {
			t.Fatalf("%v: %v", format, err)
		}
		got, err := trace.LoadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 || got[0].Task != "s0/a" || got[1].Task != "s0/b" {
			t.Fatalf("%v: reloaded %d traces", format, len(got))
		}
		m, err := trace.LoadManifest(dir)
		if err != nil || m == nil || m.Workflow != "wf" {
			t.Fatalf("%v: manifest %+v, %v", format, m, err)
		}
	}
}
