package workflow

import (
	"testing"
	"time"

	"dayu/internal/obs"
	"dayu/internal/sim"
	"dayu/internal/tracer"
	"dayu/internal/vfd"
)

// TestEngineMetrics runs a two-stage workflow with a registry attached
// and checks counters, histograms and virtual-time spans.
func TestEngineMetrics(t *testing.T) {
	eng, err := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: 1}, nil, tracer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	eng.SetMetrics(reg)
	res, err := eng.Run(twoStageSpec(t, []byte("observable payload")))
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["dayu_engine_tasks_total"]; got != 2 {
		t.Errorf("tasks_total = %d, want 2", got)
	}
	if got := snap.Counters["dayu_engine_stages_total"]; got != 2 {
		t.Errorf("stages_total = %d, want 2", got)
	}
	if got := snap.Counters["dayu_engine_task_failures_total"]; got != 0 {
		t.Errorf("failures_total = %d, want 0", got)
	}
	if snap.Gauges["dayu_engine_virtual_total_ns"] != res.Total().Nanoseconds() {
		t.Error("virtual total gauge does not match Result.Total()")
	}
	// Per-driver VFD op metrics from the instrumented session stack.
	reads := snap.Counters[obs.Name("dayu_vfd_ops_total", "driver", "store", "op", "read")]
	writes := snap.Counters[obs.Name("dayu_vfd_ops_total", "driver", "store", "op", "write")]
	if reads == 0 || writes == 0 {
		t.Errorf("vfd op counters: reads=%d writes=%d, want both > 0", reads, writes)
	}

	// Spans: one per stage plus one per task, billed on the virtual
	// clock - consecutive stage spans must tile [0, Total()].
	var stageSpans, taskSpans []obs.SpanRecord
	for _, s := range reg.Spans() {
		switch s.Name {
		case "stage":
			stageSpans = append(stageSpans, s)
		case "task":
			taskSpans = append(taskSpans, s)
		}
	}
	if len(stageSpans) != 2 || len(taskSpans) != 2 {
		t.Fatalf("spans: %d stage, %d task", len(stageSpans), len(taskSpans))
	}
	if stageSpans[0].StartNS != 0 {
		t.Error("first stage span does not start at virtual zero")
	}
	if stageSpans[1].StartNS != stageSpans[0].EndNS {
		t.Error("stage spans do not tile the virtual timeline")
	}
	if stageSpans[1].EndNS != res.Total().Nanoseconds() {
		t.Errorf("last stage span ends at %d, want %d", stageSpans[1].EndNS, res.Total().Nanoseconds())
	}
	if taskSpans[0].Attrs["task"] != "producer" || taskSpans[0].Attrs["attempts"] != "1" {
		t.Errorf("task span attrs = %+v", taskSpans[0].Attrs)
	}
}

// TestEngineMetricsDeterministic: the same run yields the same virtual
// span timeline (spans are billed from the simulated clock, not host
// time).
func TestEngineMetricsDeterministic(t *testing.T) {
	run := func() []obs.SpanRecord {
		eng, err := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: 1}, nil, tracer.Config{})
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		eng.SetMetrics(reg)
		if _, err := eng.Run(twoStageSpec(t, []byte("deterministic"))); err != nil {
			t.Fatal(err)
		}
		return reg.Spans()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("span counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].StartNS != b[i].StartNS || a[i].EndNS != b[i].EndNS {
			t.Errorf("span %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestEngineMetricsRetries checks retry/rollback/failure accounting
// under injected faults.
func TestEngineMetricsRetries(t *testing.T) {
	eng, err := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: 2}, nil, tracer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	eng.SetMetrics(reg)
	eng.SetFaults(&vfd.FaultPlan{Seed: 7, WriteError: vfd.Uniform(0.3), Latency: time.Millisecond})
	eng.SetRetry(&RetryPolicy{MaxAttempts: 4, Backoff: time.Millisecond})
	_, runErr := eng.Run(twoStageSpec(t, make([]byte, 1<<14)))

	snap := reg.Snapshot()
	retries := snap.Counters["dayu_engine_task_retries_total"]
	rollbacks := snap.Counters["dayu_engine_rollbacks_total"]
	failures := snap.Counters["dayu_engine_task_failures_total"]
	if retries == 0 {
		t.Skip("fault seed injected no retryable faults") // extremely unlikely at 30%
	}
	if rollbacks < retries {
		t.Errorf("rollbacks (%d) < retries (%d)", rollbacks, retries)
	}
	if runErr != nil && failures == 0 {
		t.Error("run failed but failure counter is zero")
	}
	// Transient write faults must show up in the per-driver error
	// taxonomy counter (instrumentation wraps the fault decorator).
	name := obs.Name("dayu_vfd_errors_total", "driver", "store", "op", "write", "kind", "transient")
	if got := snap.Counters[name]; got == 0 {
		t.Errorf("%s = %d, want > 0", name, got)
	}
}
