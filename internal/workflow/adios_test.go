package workflow

import (
	"bytes"
	"fmt"
	"testing"

	"dayu/internal/sim"
	"dayu/internal/tracer"
)

// TestBPStreamingWorkflow models the classic ADIOS use: a simulation
// writes step-grouped output, a downstream analysis reads steps back -
// all traced through the engine.
func TestBPStreamingWorkflow(t *testing.T) {
	const steps = 4
	mkRec := func(s int) []byte { return bytes.Repeat([]byte{byte(s + 1)}, 1024) }
	spec := Spec{Name: "insitu", Stages: []Stage{
		{Name: "simulate", Tasks: []Task{{Name: "sim", Fn: func(tc *TaskContext) error {
			f, err := tc.CreateBP("sim.bp")
			if err != nil {
				return err
			}
			for s := 0; s < steps; s++ {
				if _, err := f.BeginStep(); err != nil {
					return err
				}
				if err := f.WriteVar("field", []int64{1024}, mkRec(s)); err != nil {
					return err
				}
				if err := f.EndStep(); err != nil {
					return err
				}
			}
			return f.Close()
		}}}},
		{Name: "analyze", Tasks: []Task{{Name: "ana", Fn: func(tc *TaskContext) error {
			f, err := tc.OpenBP("sim.bp")
			if err != nil {
				return err
			}
			if f.Steps() != steps {
				return fmt.Errorf("steps = %d", f.Steps())
			}
			for s := int64(0); s < steps; s++ {
				got, err := f.ReadVar("field", s)
				if err != nil {
					return err
				}
				if !bytes.Equal(got, mkRec(int(s))) {
					return fmt.Errorf("step %d corrupted", s)
				}
			}
			return nil
		}}}},
	}}
	eng, err := NewEngine(Cluster{Machine: sim.MachineGPU, Nodes: 1}, nil, tracer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The simulation trace shows the log-structured signature: zero
	// reads, sequential appends, per-variable attribution.
	for _, tt := range res.Traces {
		if tt.Task != "sim" {
			continue
		}
		fr := tt.Files[0]
		if fr.Reads != 0 {
			t.Errorf("writer issued %d reads", fr.Reads)
		}
		var attributed bool
		for _, ms := range tt.Mapped {
			if ms.Object == "/field" && ms.DataOps == steps {
				attributed = true
			}
		}
		if !attributed {
			t.Error("field blocks not attributed")
		}
	}
	if res.Total() <= 0 {
		t.Error("no simulated time")
	}
}
