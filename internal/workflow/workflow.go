// Package workflow executes distributed scientific workflows over the
// simulated cluster substrate. Tasks perform real byte-level I/O through
// the traced HDF5-like format library against in-memory files; the
// engine replays the recorded operation streams against the machine's
// device models (internal/sim) to produce deterministic virtual
// execution times, honoring placement, co-scheduling, prefetch and
// stage-in/out decisions from an optimization plan.
package workflow

import (
	"fmt"
	"time"
)

// Spec describes a workflow: ordered stages of parallel tasks.
type Spec struct {
	Name   string
	Stages []Stage
}

// Stage is a logical grouping of tasks that may execute in parallel
// (paper §VI-A: "stages represent logical groupings of tasks").
type Stage struct {
	Name  string
	Tasks []Task
}

// Task is one schedulable unit.
type Task struct {
	Name string
	// Fn performs the task's I/O through the TaskContext.
	Fn func(tc *TaskContext) error
	// Compute is synthetic non-I/O execution time added to the task.
	Compute time.Duration
	// ComputePerByte adds data-proportional compute time: the task's
	// raw-data I/O volume times this many nanoseconds per byte. It
	// models the processing work between I/O phases, which bounds how
	// much storage optimization can speed a task up.
	ComputePerByte float64
}

// Validate checks the spec for structural errors.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workflow: spec has no name")
	}
	if len(s.Stages) == 0 {
		return fmt.Errorf("workflow: spec %q has no stages", s.Name)
	}
	seen := map[string]bool{}
	for _, st := range s.Stages {
		if st.Name == "" {
			return fmt.Errorf("workflow: unnamed stage in %q", s.Name)
		}
		if len(st.Tasks) == 0 {
			return fmt.Errorf("workflow: stage %q has no tasks", st.Name)
		}
		for _, t := range st.Tasks {
			if t.Name == "" {
				return fmt.Errorf("workflow: unnamed task in stage %q", st.Name)
			}
			if seen[t.Name] {
				return fmt.Errorf("workflow: duplicate task name %q", t.Name)
			}
			seen[t.Name] = true
			if t.Fn == nil {
				return fmt.Errorf("workflow: task %q has no body", t.Name)
			}
		}
	}
	return nil
}

// TaskNames lists all task names in execution order.
func (s Spec) TaskNames() []string {
	var names []string
	for _, st := range s.Stages {
		for _, t := range st.Tasks {
			names = append(names, t.Name)
		}
	}
	return names
}
