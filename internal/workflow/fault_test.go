package workflow

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"dayu/internal/hdf5"
	"dayu/internal/sim"
	"dayu/internal/tracer"
	"dayu/internal/vfd"
)

func newTestEngine(t *testing.T, nodes int, parallel bool) *Engine {
	t.Helper()
	eng, err := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: nodes, Parallel: parallel}, nil, tracer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// writerTask writes payload bytes into file as one dataset.
func writerTask(name, file string, payload int) Task {
	return Task{Name: name, Fn: func(tc *TaskContext) error {
		f, err := tc.Create(file)
		if err != nil {
			return err
		}
		ds, err := f.Root().CreateDataset("d", hdf5.Uint8, []int64{int64(payload)}, nil)
		if err != nil {
			return err
		}
		if err := ds.WriteAll(make([]byte, payload)); err != nil {
			return err
		}
		return f.Close()
	}}
}

func TestRetryRecoversFromTransientFailures(t *testing.T) {
	eng := newTestEngine(t, 1, false)
	eng.SetRetry(&RetryPolicy{MaxAttempts: 5, Backoff: 100 * time.Millisecond})
	spec := Spec{Name: "flaky", Stages: []Stage{{Name: "s", Tasks: []Task{{
		Name: "flaky",
		Fn: func(tc *TaskContext) error {
			if tc.Attempt() < 3 {
				return fmt.Errorf("spurious storage error: %w", vfd.ErrTransient)
			}
			f, err := tc.Create("out.h5")
			if err != nil {
				return err
			}
			return f.Close()
		},
	}}}}}
	res, err := eng.Run(spec)
	if err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	tr := res.Stages[0].Tasks[0]
	if tr.Attempts != 3 || tr.Failed {
		t.Errorf("task result attempts=%d failed=%v, want 3 attempts, not failed", tr.Attempts, tr.Failed)
	}
	// Exponential backoff billed into virtual time: 100ms + 200ms.
	if want := 300 * time.Millisecond; tr.Backoff != want {
		t.Errorf("backoff = %v, want %v", tr.Backoff, want)
	}
	if tr.Time() < tr.Backoff {
		t.Error("backoff not billed into task time")
	}
	if len(res.Traces) != 1 || res.Traces[0].Attempts != 3 || res.Traces[0].Failed {
		t.Errorf("trace attempts/failed not recorded: %+v", res.Traces[0])
	}
	if eng.FileSize("out.h5") == 0 {
		t.Error("recovered task left no output")
	}
}

// TestPartialFailureJoinsErrors: with faults but no retry policy, a
// doomed task fails while an I/O-free task completes; the run reports a
// joined error that still carries traces and results for every task.
func TestPartialFailureJoinsErrors(t *testing.T) {
	eng := newTestEngine(t, 1, false)
	eng.SetFaults(&vfd.FaultPlan{Seed: 1, WriteError: vfd.Uniform(1)}) // every write fails
	computeRan := false
	spec := Spec{Name: "partial", Stages: []Stage{
		{Name: "mixed", Tasks: []Task{
			writerTask("doomed", "never.h5", 256),
			{Name: "survivor", Fn: func(tc *TaskContext) error {
				computeRan = true
				tc.Compute(time.Second)
				return nil
			}},
		}},
		{Name: "downstream", Tasks: []Task{{Name: "never-runs", Fn: func(tc *TaskContext) error {
			t.Error("downstream stage ran after failed stage")
			return nil
		}}}},
	}}
	res, err := eng.Run(spec)
	if err == nil {
		t.Fatal("run succeeded despite certain write faults")
	}
	if !errors.Is(err, vfd.ErrTransient) {
		t.Errorf("joined error lost the fault type: %v", err)
	}
	if res == nil {
		t.Fatal("partial failure returned no result")
	}
	if !computeRan {
		t.Error("surviving task did not run")
	}
	st := res.Stages[0]
	if len(st.Tasks) != 2 {
		t.Fatalf("failed stage carries %d task results, want 2", len(st.Tasks))
	}
	byName := map[string]TaskResult{}
	for _, tr := range st.Tasks {
		byName[tr.Name] = tr
	}
	if !byName["doomed"].Failed || byName["survivor"].Failed {
		t.Errorf("failure flags wrong: %+v", byName)
	}
	if byName["survivor"].Compute != time.Second {
		t.Errorf("survivor compute = %v", byName["survivor"].Compute)
	}
	if len(res.Traces) != 2 {
		t.Fatalf("traces = %d, want both tasks", len(res.Traces))
	}
	foundFailed := false
	for _, tr := range res.Traces {
		if tr.Failed {
			foundFailed = true
		}
	}
	if !foundFailed {
		t.Error("no trace marked failed")
	}
	// The doomed task never completed a file, and downstream never ran.
	if eng.FileSize("never.h5") != 0 {
		t.Error("failed task's file survived rollback")
	}
	if got := res.StageTime("downstream"); got != 0 {
		t.Errorf("downstream stage has time %v", got)
	}
}

// TestRollbackRestoresPriorContents: a failed attempt that overwrote an
// existing file must restore the pre-attempt bytes, and a file the
// attempt created must disappear.
func TestRollbackRestoresPriorContents(t *testing.T) {
	eng := newTestEngine(t, 1, false)
	eng.SetRetry(&RetryPolicy{MaxAttempts: 1}) // resilient, but no retries
	if _, err := eng.Run(Spec{Name: "seed", Stages: []Stage{{Name: "s1", Tasks: []Task{
		writerTask("producer", "keep.h5", 512),
	}}}}); err != nil {
		t.Fatal(err)
	}
	sizeBefore := eng.FileSize("keep.h5")
	boom := errors.New("logic bug")
	_, err := eng.Run(Spec{Name: "clobber", Stages: []Stage{{Name: "s2", Tasks: []Task{{
		Name: "clobberer",
		Fn: func(tc *TaskContext) error {
			// Recreate truncates keep.h5 and creates a new scratch file,
			// then the task dies: both must roll back.
			f, err := tc.Create("keep.h5")
			if err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			g, err := tc.Create("scratch.h5")
			if err != nil {
				return err
			}
			if err := g.Close(); err != nil {
				return err
			}
			return boom
		},
	}}}}})
	if !errors.Is(err, boom) {
		t.Fatalf("unexpected error: %v", err)
	}
	if got := eng.FileSize("keep.h5"); got != sizeBefore {
		t.Errorf("keep.h5 = %d bytes after rollback, want %d", got, sizeBefore)
	}
	if eng.FileSize("scratch.h5") != 0 {
		t.Error("scratch.h5 survived rollback")
	}
	names := eng.FileNames()
	if len(names) != 1 || names[0] != "keep.h5" {
		t.Errorf("files after rollback: %v", names)
	}
}

func TestRescheduleMovesRetryToAnotherNode(t *testing.T) {
	eng := newTestEngine(t, 3, false)
	eng.SetRetry(&RetryPolicy{MaxAttempts: 3, Reschedule: true})
	var nodes []int
	spec := Spec{Name: "move", Stages: []Stage{{Name: "s", Tasks: []Task{{
		Name: "mover",
		Fn: func(tc *TaskContext) error {
			nodes = append(nodes, tc.Node())
			if tc.Attempt() == 1 {
				return fmt.Errorf("node is sick: %w", vfd.ErrFailStop)
			}
			return nil
		},
	}}}}}
	res, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Fatalf("attempts = %d, want 2", len(nodes))
	}
	if nodes[0] == nodes[1] {
		t.Errorf("retry stayed on failed node %d", nodes[0])
	}
	if got := res.Stages[0].Tasks[0].Node; got != nodes[1] {
		t.Errorf("result node = %d, want final node %d", got, nodes[1])
	}
}

// TestNonRetryableErrorFailsFast: the classifier gates retries, so a
// plain logic error consumes exactly one attempt.
func TestNonRetryableErrorFailsFast(t *testing.T) {
	eng := newTestEngine(t, 1, false)
	eng.SetRetry(&RetryPolicy{MaxAttempts: 5})
	attempts := 0
	boom := errors.New("deterministic bug")
	_, err := eng.Run(Spec{Name: "bug", Stages: []Stage{{Name: "s", Tasks: []Task{{
		Name: "buggy",
		Fn: func(tc *TaskContext) error {
			attempts++
			return boom
		},
	}}}}})
	if !errors.Is(err, boom) {
		t.Fatalf("error lost: %v", err)
	}
	if attempts != 1 {
		t.Errorf("non-retryable error retried %d times", attempts)
	}
}

// faultedSpec is a three-task parallel stage with real file I/O for the
// determinism and race tests.
func faultedSpec() Spec {
	return Spec{Name: "faulted", Stages: []Stage{
		{Name: "write", Tasks: []Task{
			writerTask("w0", "f0.h5", 1024),
			writerTask("w1", "f1.h5", 2048),
			writerTask("w2", "f2.h5", 4096),
		}},
		{Name: "read", Tasks: []Task{{
			Name: "reader",
			Fn: func(tc *TaskContext) error {
				for _, name := range []string{"f0.h5", "f1.h5", "f2.h5"} {
					f, err := tc.Open(name)
					if err != nil {
						return err
					}
					ds, err := f.OpenDatasetPath("/d")
					if err != nil {
						return err
					}
					if _, err := ds.ReadAll(); err != nil {
						return err
					}
					if err := f.Close(); err != nil {
						return err
					}
				}
				return nil
			},
		}}},
	}}
}

func resilientRun(t *testing.T, parallel bool) *Result {
	t.Helper()
	eng := newTestEngine(t, 2, parallel)
	eng.SetFaults(&vfd.FaultPlan{
		Seed:       11,
		ReadError:  vfd.Uniform(0.05),
		WriteError: vfd.Uniform(0.05),
		TornWrite:  0.02,
		Latency:    time.Millisecond,
	})
	eng.SetRetry(&RetryPolicy{MaxAttempts: 10, Backoff: 10 * time.Millisecond, Reschedule: true})
	res, err := eng.Run(faultedSpec())
	if err != nil {
		t.Fatalf("fault-injected run failed despite retries: %v", err)
	}
	return res
}

// TestFaultInjectionDeterministic: same seed, same workflow - identical
// virtual time and identical per-task attempt counts, run after run.
func TestFaultInjectionDeterministic(t *testing.T) {
	a := resilientRun(t, false)
	b := resilientRun(t, false)
	if a.Total() != b.Total() {
		t.Errorf("totals diverged: %v vs %v", a.Total(), b.Total())
	}
	attempts := func(r *Result) map[string]int {
		m := map[string]int{}
		for _, tr := range r.Traces {
			m[tr.Task] = tr.Attempts
		}
		return m
	}
	am, bm := attempts(a), attempts(b)
	total := 0
	for task, n := range am {
		if bm[task] != n {
			t.Errorf("task %q attempts diverged: %d vs %d", task, n, bm[task])
		}
		total += n
	}
	if total <= len(am) {
		t.Errorf("no retries happened (total attempts %d over %d tasks); fault plan too weak for the test", total, len(am))
	}
}

// TestParallelFaultInjection exercises concurrent retries, rollbacks and
// store access under -race, and checks parallel execution preserves the
// sequential run's virtual timing.
func TestParallelFaultInjection(t *testing.T) {
	seq := resilientRun(t, false)
	par := resilientRun(t, true)
	if seq.Total() != par.Total() {
		t.Errorf("parallel total %v != sequential %v", par.Total(), seq.Total())
	}
}
