package workflow

import (
	"fmt"

	"dayu/internal/sim"
)

// Placement locates a file on the cluster: a device tier and, for
// node-local tiers, a node index.
type Placement struct {
	// Device is a sim device name ("nfs", "beegfs", "nvme", "sata-ssd",
	// "hdd", "memory"). Empty selects the machine's default shared tier.
	Device string
	// Node is the owning node for node-local devices (ignored for
	// shared tiers).
	Node int
}

// Plan is the set of optimization decisions DaYu's diagnostics suggest,
// applied by the engine: data placement, task co-scheduling, prefetch
// (stage-in) and stage-out.
type Plan struct {
	// Placements pins files to tiers; unlisted files live on the
	// machine's default shared storage.
	Placements map[string]Placement
	// DefaultPlacement, when set, applies to every file without an
	// explicit placement entry.
	DefaultPlacement *Placement
	// NodeOf co-schedules tasks onto nodes; unlisted tasks round-robin.
	NodeOf map[string]int
	// StageIn lists files to copy to their planned placement before the
	// named stage runs (the prefetch guideline); the copy cost appears
	// as a "Stage-In" pseudo stage, as in Figure 11.
	StageIn map[string][]string
	// StageOut lists files to copy back to shared storage after the
	// named stage; the cost appears as a "Stage-Out" pseudo stage.
	StageOut map[string][]string
	// AsyncStageOut overlaps stage-out with subsequent compute: its cost
	// is reported but excluded from the critical path (DDMD §VII-C1
	// "Asynchronous Data Staging").
	AsyncStageOut bool
	// CacheFiles applies the customized-caching guideline (§III-A-1):
	// listed files are held in a Hermes-style memory buffer after their
	// first access, so subsequent tasks' reads replay against the
	// memory tier instead of the file's home device.
	CacheFiles []string
	// AsyncWrites models asynchronous I/O (paper §IX future work):
	// raw-data writes land in a memory buffer on the critical path and
	// drain to the home device in the background. Each task still pays
	// the memory-buffer cost and all metadata writes; the drained device
	// time is reported as an async pseudo-stage per stage.
	AsyncWrites bool
}

// cached reports whether a file is memory-cached by the plan.
func (p *Plan) cached(file string) bool {
	if p == nil {
		return false
	}
	for _, f := range p.CacheFiles {
		if f == file {
			return true
		}
	}
	return false
}

// placementOf resolves the effective placement for a file.
func (p *Plan) placementOf(file string) Placement {
	if p == nil {
		return Placement{}
	}
	if pl, ok := p.Placements[file]; ok {
		return pl
	}
	if p.DefaultPlacement != nil {
		return *p.DefaultPlacement
	}
	return Placement{}
}

// deviceFor resolves a placement to a device spec on the machine.
func deviceFor(m sim.Machine, pl Placement) (sim.DeviceSpec, error) {
	if pl.Device == "" {
		return m.Default, nil
	}
	if pl.Device == m.Default.Name {
		return m.Default, nil
	}
	d, err := m.LocalByName(pl.Device)
	if err != nil {
		return sim.DeviceSpec{}, fmt.Errorf("workflow: placement: %w", err)
	}
	return d, nil
}

// Validate checks the plan against a machine and node count.
func (p *Plan) Validate(m sim.Machine, nodes int) error {
	if p == nil {
		return nil
	}
	check := func(pl Placement) error {
		if _, err := deviceFor(m, pl); err != nil {
			return err
		}
		if pl.Device != "" && pl.Device != m.Default.Name {
			if pl.Node < 0 || pl.Node >= nodes {
				return fmt.Errorf("workflow: placement node %d outside cluster of %d nodes", pl.Node, nodes)
			}
		}
		return nil
	}
	for file, pl := range p.Placements {
		if err := check(pl); err != nil {
			return fmt.Errorf("%w (file %s)", err, file)
		}
	}
	if p.DefaultPlacement != nil {
		if err := check(*p.DefaultPlacement); err != nil {
			return err
		}
	}
	for task, node := range p.NodeOf {
		if node < 0 || node >= nodes {
			return fmt.Errorf("workflow: task %q scheduled on node %d of %d", task, node, nodes)
		}
	}
	return nil
}
