package workflow

import (
	"bytes"
	"testing"

	"dayu/internal/hdf5"
	"dayu/internal/netcdf"
	"dayu/internal/sim"
	"dayu/internal/tracer"
)

// TestMixedFormatWorkflow runs a producer writing netCDF and HDF5-like
// files in one task, and a consumer reading both - the tracer must
// observe both formats uniformly within the same task trace.
func TestMixedFormatWorkflow(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5c}, 8*16)
	spec := Spec{Name: "mixed", Stages: []Stage{
		{Name: "produce", Tasks: []Task{{Name: "producer", Fn: func(tc *TaskContext) error {
			nc, err := tc.CreateNC("grid.nc")
			if err != nil {
				return err
			}
			x, err := nc.DefineDim("x", 16)
			if err != nil {
				return err
			}
			v, err := nc.DefineVar("field", netcdf.Double, []netcdf.DimID{x})
			if err != nil {
				return err
			}
			if err := nc.EndDef(); err != nil {
				return err
			}
			if err := v.WriteAll(payload); err != nil {
				return err
			}
			if err := nc.Close(); err != nil {
				return err
			}
			// Sibling HDF5-like output in the same task.
			h5, err := tc.Create("meta.h5")
			if err != nil {
				return err
			}
			ds, err := h5.Root().CreateDataset("index", hdf5.Uint8, []int64{16}, nil)
			if err != nil {
				return err
			}
			return ds.WriteAll(make([]byte, 16))
		}}}},
		{Name: "consume", Tasks: []Task{{Name: "consumer", Fn: func(tc *TaskContext) error {
			nc, err := tc.OpenNC("grid.nc")
			if err != nil {
				return err
			}
			v, err := nc.VarByName("field")
			if err != nil {
				return err
			}
			got, err := v.ReadAll()
			if err != nil {
				return err
			}
			if !bytes.Equal(got, payload) {
				t.Error("netCDF data corrupted across tasks")
			}
			if err := nc.Close(); err != nil {
				return err
			}
			h5, err := tc.Open("meta.h5")
			if err != nil {
				return err
			}
			_, err = h5.OpenDatasetPath("/index")
			return err
		}}}},
	}}
	eng, err := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: 1}, nil, tracer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Both formats appear in the producer's trace with object records.
	var ncSeen, h5Seen bool
	for _, tt := range res.Traces {
		if tt.Task != "producer" {
			continue
		}
		for _, o := range tt.Objects {
			if o.File == "grid.nc" && o.Object == "/field" {
				ncSeen = true
			}
			if o.File == "meta.h5" && o.Object == "/index" {
				h5Seen = true
			}
		}
	}
	if !ncSeen || !h5Seen {
		t.Errorf("mixed-format tracing incomplete: nc=%v h5=%v", ncSeen, h5Seen)
	}
	// Virtual time accrues for both files.
	if res.StageTime("produce") <= 0 || res.StageTime("consume") <= 0 {
		t.Error("stage times missing")
	}
}
