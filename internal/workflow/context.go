package workflow

import (
	"fmt"
	"time"

	"dayu/internal/adios"
	"dayu/internal/hdf5"
	"dayu/internal/netcdf"
	"dayu/internal/tracer"
	"dayu/internal/vfd"
)

// TaskContext is the I/O environment handed to a task body. All file
// access goes through the traced format library so the Data Semantic
// Mapper observes every object access and I/O operation.
type TaskContext struct {
	engine      *Engine
	tracer      *tracer.Tracer
	task        string
	node        int
	opLog       *vfd.OpLog
	computeTime time.Duration
	open        []*hdf5.File
	openNC      []*netcdf.File
	openBP      []*adios.File
}

// Task returns the executing task's name.
func (tc *TaskContext) Task() string { return tc.task }

// Node returns the node the task is scheduled on.
func (tc *TaskContext) Node() int { return tc.node }

// Compute adds d of synthetic non-I/O work to the task's virtual time.
func (tc *TaskContext) Compute(d time.Duration) {
	if d > 0 {
		tc.computeTime += d
	}
}

// Create creates (or truncates) a file with default format parameters.
func (tc *TaskContext) Create(name string) (*hdf5.File, error) {
	return tc.CreateWith(name, hdf5.Config{})
}

// CreateWith creates a file with custom format parameters; tracing
// fields of cfg are overridden by the engine's tracer.
func (tc *TaskContext) CreateWith(name string, cfg hdf5.Config) (*hdf5.File, error) {
	store := &fileStore{name: name}
	tc.engine.mu.Lock()
	tc.engine.files[name] = store
	tc.engine.mu.Unlock()
	return tc.openStore(store, cfg, true)
}

// Open opens an existing file.
func (tc *TaskContext) Open(name string) (*hdf5.File, error) {
	tc.engine.mu.Lock()
	store, ok := tc.engine.files[name]
	tc.engine.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("workflow: task %q opened missing file %q", tc.task, name)
	}
	return tc.openStore(store, hdf5.Config{}, false)
}

func (tc *TaskContext) openStore(store *fileStore, cfg hdf5.Config, create bool) (*hdf5.File, error) {
	drv := tc.tracer.WrapDriver(&storeDriver{store: store}, store.name, tc.opLog)
	cfg.Mailbox = tc.tracer.Mailbox()
	cfg.Observer = tc.tracer.VOLObserver()
	cfg.Task = tc.task
	var (
		f   *hdf5.File
		err error
	)
	if create {
		f, err = hdf5.Create(drv, store.name, cfg)
	} else {
		f, err = hdf5.Open(drv, store.name, cfg)
	}
	if err != nil {
		return nil, err
	}
	tc.open = append(tc.open, f)
	return f, nil
}

// CreateNC creates (or truncates) a netCDF-like file in define mode,
// traced by the same profilers as the HDF5-like layer.
func (tc *TaskContext) CreateNC(name string) (*netcdf.File, error) {
	store := &fileStore{name: name}
	tc.engine.mu.Lock()
	tc.engine.files[name] = store
	tc.engine.mu.Unlock()
	drv := tc.tracer.WrapDriver(&storeDriver{store: store}, name, tc.opLog)
	f, err := netcdf.Create(drv, name, netcdf.Config{
		Mailbox:  tc.tracer.Mailbox(),
		Observer: tc.tracer.VOLObserver(),
		Task:     tc.task,
	})
	if err != nil {
		return nil, err
	}
	tc.openNC = append(tc.openNC, f)
	return f, nil
}

// OpenNC opens an existing netCDF-like file in data mode.
func (tc *TaskContext) OpenNC(name string) (*netcdf.File, error) {
	tc.engine.mu.Lock()
	store, ok := tc.engine.files[name]
	tc.engine.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("workflow: task %q opened missing file %q", tc.task, name)
	}
	drv := tc.tracer.WrapDriver(&storeDriver{store: store}, name, tc.opLog)
	f, err := netcdf.Open(drv, name, netcdf.Config{
		Mailbox:  tc.tracer.Mailbox(),
		Observer: tc.tracer.VOLObserver(),
		Task:     tc.task,
	})
	if err != nil {
		return nil, err
	}
	tc.openNC = append(tc.openNC, f)
	return f, nil
}

// CreateBP creates (or truncates) an ADIOS-BP-like log-structured file.
func (tc *TaskContext) CreateBP(name string) (*adios.File, error) {
	store := &fileStore{name: name}
	tc.engine.mu.Lock()
	tc.engine.files[name] = store
	tc.engine.mu.Unlock()
	drv := tc.tracer.WrapDriver(&storeDriver{store: store}, name, tc.opLog)
	f, err := adios.Create(drv, name, adios.Config{
		Mailbox:  tc.tracer.Mailbox(),
		Observer: tc.tracer.VOLObserver(),
		Task:     tc.task,
	})
	if err != nil {
		return nil, err
	}
	tc.openBP = append(tc.openBP, f)
	return f, nil
}

// OpenBP opens an existing BP-like file for reading.
func (tc *TaskContext) OpenBP(name string) (*adios.File, error) {
	tc.engine.mu.Lock()
	store, ok := tc.engine.files[name]
	tc.engine.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("workflow: task %q opened missing file %q", tc.task, name)
	}
	drv := tc.tracer.WrapDriver(&storeDriver{store: store}, name, tc.opLog)
	f, err := adios.Open(drv, name, adios.Config{
		Mailbox:  tc.tracer.Mailbox(),
		Observer: tc.tracer.VOLObserver(),
		Task:     tc.task,
	})
	if err != nil {
		return nil, err
	}
	tc.openBP = append(tc.openBP, f)
	return f, nil
}

// Exists reports whether a file exists in the workflow store.
func (tc *TaskContext) Exists(name string) bool {
	tc.engine.mu.Lock()
	defer tc.engine.mu.Unlock()
	_, ok := tc.engine.files[name]
	return ok
}

// FileSize reports a stored file's size in bytes.
func (tc *TaskContext) FileSize(name string) int64 { return tc.engine.FileSize(name) }

// closeAll closes any files the task left open (idempotent for files
// already closed by the task body).
func (tc *TaskContext) closeAll() error {
	for _, f := range tc.open {
		if err := f.Close(); err != nil {
			return err
		}
	}
	tc.open = nil
	for _, f := range tc.openNC {
		if err := f.Close(); err != nil {
			return err
		}
	}
	tc.openNC = nil
	for _, f := range tc.openBP {
		if err := f.Close(); err != nil {
			return err
		}
	}
	tc.openBP = nil
	return nil
}
