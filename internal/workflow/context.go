package workflow

import (
	"fmt"
	"time"

	"dayu/internal/adios"
	"dayu/internal/hdf5"
	"dayu/internal/netcdf"
	"dayu/internal/tracer"
	"dayu/internal/vfd"
)

// TaskContext is the I/O environment handed to a task body. All file
// access goes through the traced format library so the Data Semantic
// Mapper observes every object access and I/O operation.
type TaskContext struct {
	engine      *Engine
	tracer      *tracer.Tracer
	task        string
	node        int
	attempt     int
	opLog       *vfd.OpLog
	computeTime time.Duration
	open        []*hdf5.File
	openNC      []*netcdf.File
	openBP      []*adios.File
	// faultDrivers are this attempt's fault-injection sessions; their
	// injected latency is billed into the task's virtual I/O time.
	faultDrivers  []*vfd.FaultDriver
	faultSessions int
	// snapshots captures the first-touch state of every file this attempt
	// opened or created, so a failed attempt rolls the store back to
	// clean pre-attempt state before a retry (or before partial-failure
	// aggregation). Only populated on resilient engines.
	snapshots map[string]*fileSnapshot
}

// fileSnapshot is pre-attempt file state: the store that was registered
// (nil if the file did not exist) and a copy of its contents.
type fileSnapshot struct {
	store *fileStore
	data  []byte
}

// Task returns the executing task's name.
func (tc *TaskContext) Task() string { return tc.task }

// Node returns the node the task is scheduled on.
func (tc *TaskContext) Node() int { return tc.node }

// Attempt returns the 1-based execution attempt (2+ after retries).
func (tc *TaskContext) Attempt() int {
	if tc.attempt < 1 {
		return 1
	}
	return tc.attempt
}

// Compute adds d of synthetic non-I/O work to the task's virtual time.
func (tc *TaskContext) Compute(d time.Duration) {
	if d > 0 {
		tc.computeTime += d
	}
}

// noteSnapshot records pre-attempt state for a file at first touch.
// Caller holds engine.mu.
func (tc *TaskContext) noteSnapshot(name string, store *fileStore) {
	if !tc.engine.resilient() {
		return
	}
	if _, ok := tc.snapshots[name]; ok {
		return
	}
	if tc.snapshots == nil {
		tc.snapshots = map[string]*fileSnapshot{}
	}
	snap := &fileSnapshot{store: store}
	if store != nil {
		snap.data = store.copyData()
	}
	tc.snapshots[name] = snap
}

// rollback rewinds every file this attempt touched to its pre-attempt
// snapshot: created files disappear, modified files regain their old
// contents. Retries therefore start from clean state even after torn
// writes.
func (tc *TaskContext) rollback() {
	if len(tc.snapshots) == 0 {
		tc.snapshots = nil
		return
	}
	e := tc.engine
	e.mu.Lock()
	for name, snap := range tc.snapshots {
		if snap.store == nil {
			delete(e.files, name)
			continue
		}
		e.files[name] = snap.store
		snap.store.restore(snap.data)
	}
	e.mu.Unlock()
	tc.snapshots = nil
}

// commit discards the attempt's snapshots after success.
func (tc *TaskContext) commit() { tc.snapshots = nil }

// faultLatency totals the virtual latency injected by this attempt's
// fault sessions.
func (tc *TaskContext) faultLatency() time.Duration {
	var total time.Duration
	for _, fd := range tc.faultDrivers {
		total += fd.Stats().InjectedLatency
	}
	return total
}

// newStore registers a fresh store for name, snapshotting whatever it
// replaces.
func (tc *TaskContext) newStore(name string) *fileStore {
	store := &fileStore{name: name}
	e := tc.engine
	e.mu.Lock()
	tc.noteSnapshot(name, e.files[name])
	e.files[name] = store
	e.mu.Unlock()
	return store
}

// lookupStore resolves an existing store, snapshotting it at first touch.
func (tc *TaskContext) lookupStore(name string) (*fileStore, error) {
	e := tc.engine
	e.mu.Lock()
	defer e.mu.Unlock()
	store, ok := e.files[name]
	if !ok {
		return nil, fmt.Errorf("workflow: task %q opened missing file %q", tc.task, name)
	}
	tc.noteSnapshot(name, store)
	return store, nil
}

// wrapDriver builds the task's driver stack for one session on store:
// a store session, the Data Semantic Mapper's profiling decorator,
// (when the engine injects faults) the fault decorator, and (when the
// engine carries a metrics registry) the obs instrumentation outermost
// - so per-op metrics time the whole stack and injected faults are
// counted in the error taxonomy. With a nil registry Instrument is a
// pass-through and the stack is byte-for-byte the uninstrumented one.
func (tc *TaskContext) wrapDriver(store *fileStore) vfd.Driver {
	drv := tc.tracer.WrapDriver(&storeDriver{store: store}, store.name, tc.opLog)
	if fp := tc.engine.faults; fp != nil {
		tc.faultSessions++
		seed := vfd.DeriveSeed(fp.Seed, tc.task, store.name, tc.Attempt(), tc.faultSessions)
		fd := vfd.NewFaultDriver(drv, *fp, seed)
		tc.faultDrivers = append(tc.faultDrivers, fd)
		drv = fd
	}
	return vfd.Instrument(drv, "store", tc.engine.metrics)
}

// Create creates (or truncates) a file with default format parameters.
func (tc *TaskContext) Create(name string) (*hdf5.File, error) {
	return tc.CreateWith(name, hdf5.Config{})
}

// CreateWith creates a file with custom format parameters; tracing
// fields of cfg are overridden by the engine's tracer.
func (tc *TaskContext) CreateWith(name string, cfg hdf5.Config) (*hdf5.File, error) {
	return tc.openStore(tc.newStore(name), cfg, true)
}

// Open opens an existing file.
func (tc *TaskContext) Open(name string) (*hdf5.File, error) {
	store, err := tc.lookupStore(name)
	if err != nil {
		return nil, err
	}
	return tc.openStore(store, hdf5.Config{}, false)
}

func (tc *TaskContext) openStore(store *fileStore, cfg hdf5.Config, create bool) (*hdf5.File, error) {
	drv := tc.wrapDriver(store)
	cfg.Mailbox = tc.tracer.Mailbox()
	cfg.Observer = tc.tracer.VOLObserver()
	cfg.Task = tc.task
	var (
		f   *hdf5.File
		err error
	)
	if create {
		f, err = hdf5.Create(drv, store.name, cfg)
	} else {
		f, err = hdf5.Open(drv, store.name, cfg)
	}
	if err != nil {
		return nil, err
	}
	tc.open = append(tc.open, f)
	return f, nil
}

func (tc *TaskContext) ncConfig() netcdf.Config {
	return netcdf.Config{
		Mailbox:  tc.tracer.Mailbox(),
		Observer: tc.tracer.VOLObserver(),
		Task:     tc.task,
	}
}

// CreateNC creates (or truncates) a netCDF-like file in define mode,
// traced by the same profilers as the HDF5-like layer.
func (tc *TaskContext) CreateNC(name string) (*netcdf.File, error) {
	store := tc.newStore(name)
	f, err := netcdf.Create(tc.wrapDriver(store), name, tc.ncConfig())
	if err != nil {
		return nil, err
	}
	tc.openNC = append(tc.openNC, f)
	return f, nil
}

// OpenNC opens an existing netCDF-like file in data mode.
func (tc *TaskContext) OpenNC(name string) (*netcdf.File, error) {
	store, err := tc.lookupStore(name)
	if err != nil {
		return nil, err
	}
	f, err := netcdf.Open(tc.wrapDriver(store), name, tc.ncConfig())
	if err != nil {
		return nil, err
	}
	tc.openNC = append(tc.openNC, f)
	return f, nil
}

func (tc *TaskContext) bpConfig() adios.Config {
	return adios.Config{
		Mailbox:  tc.tracer.Mailbox(),
		Observer: tc.tracer.VOLObserver(),
		Task:     tc.task,
	}
}

// CreateBP creates (or truncates) an ADIOS-BP-like log-structured file.
func (tc *TaskContext) CreateBP(name string) (*adios.File, error) {
	store := tc.newStore(name)
	f, err := adios.Create(tc.wrapDriver(store), name, tc.bpConfig())
	if err != nil {
		return nil, err
	}
	tc.openBP = append(tc.openBP, f)
	return f, nil
}

// OpenBP opens an existing BP-like file for reading.
func (tc *TaskContext) OpenBP(name string) (*adios.File, error) {
	store, err := tc.lookupStore(name)
	if err != nil {
		return nil, err
	}
	f, err := adios.Open(tc.wrapDriver(store), name, tc.bpConfig())
	if err != nil {
		return nil, err
	}
	tc.openBP = append(tc.openBP, f)
	return f, nil
}

// Exists reports whether a file exists in the workflow store.
func (tc *TaskContext) Exists(name string) bool {
	tc.engine.mu.Lock()
	defer tc.engine.mu.Unlock()
	_, ok := tc.engine.files[name]
	return ok
}

// FileSize reports a stored file's size in bytes.
func (tc *TaskContext) FileSize(name string) int64 { return tc.engine.FileSize(name) }

// closeAll closes any files the task left open (idempotent for files
// already closed by the task body).
func (tc *TaskContext) closeAll() error {
	for _, f := range tc.open {
		if err := f.Close(); err != nil {
			return err
		}
	}
	tc.open = nil
	for _, f := range tc.openNC {
		if err := f.Close(); err != nil {
			return err
		}
	}
	tc.openNC = nil
	for _, f := range tc.openBP {
		if err := f.Close(); err != nil {
			return err
		}
	}
	tc.openBP = nil
	return nil
}

// abort closes whatever the failed attempt left open, ignoring errors:
// the close-path I/O still runs (and is traced), but the attempt's
// outcome is already decided and its writes are about to roll back.
func (tc *TaskContext) abort() {
	for _, f := range tc.open {
		_ = f.Close()
	}
	tc.open = nil
	for _, f := range tc.openNC {
		_ = f.Close()
	}
	tc.openNC = nil
	for _, f := range tc.openBP {
		_ = f.Close()
	}
	tc.openBP = nil
}
