package workflow

import (
	"fmt"
	"sync"

	"dayu/internal/sim"
	"dayu/internal/vfd"
)

// fileStore holds the persistent contents of one simulated file. Tasks
// open sessions against it; closing a session leaves the contents in
// place for downstream tasks (unlike vfd.MemDriver, whose Close is
// terminal).
type fileStore struct {
	name string
	mu   sync.RWMutex // tasks of a parallel stage may share a file
	data []byte
}

// Size returns the stored file size.
func (s *fileStore) Size() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.data))
}

// storeDriver is one open session on a fileStore, implementing
// vfd.Driver.
type storeDriver struct {
	store  *fileStore
	closed bool
}

func (d *storeDriver) ReadAt(p []byte, off int64, _ sim.OpClass) error {
	if d.closed {
		return vfd.ErrClosed
	}
	d.store.mu.RLock()
	defer d.store.mu.RUnlock()
	if off < 0 || off+int64(len(p)) > int64(len(d.store.data)) {
		return fmt.Errorf("workflow: read [%d,%d) beyond EOF %d of %s",
			off, off+int64(len(p)), len(d.store.data), d.store.name)
	}
	copy(p, d.store.data[off:])
	return nil
}

func (d *storeDriver) WriteAt(p []byte, off int64, _ sim.OpClass) error {
	if d.closed {
		return vfd.ErrClosed
	}
	d.store.mu.Lock()
	defer d.store.mu.Unlock()
	if off < 0 {
		return fmt.Errorf("workflow: negative write offset %d in %s", off, d.store.name)
	}
	end := off + int64(len(p))
	for int64(len(d.store.data)) < end {
		d.store.data = append(d.store.data, make([]byte, end-int64(len(d.store.data)))...)
	}
	copy(d.store.data[off:end], p)
	return nil
}

func (d *storeDriver) EOF() int64 { return d.store.Size() }

func (d *storeDriver) Truncate(size int64) error {
	if d.closed {
		return vfd.ErrClosed
	}
	d.store.mu.Lock()
	defer d.store.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("workflow: negative truncate of %s", d.store.name)
	}
	if size <= int64(len(d.store.data)) {
		d.store.data = d.store.data[:size]
		return nil
	}
	d.store.data = append(d.store.data, make([]byte, size-int64(len(d.store.data)))...)
	return nil
}

func (d *storeDriver) Close() error {
	d.closed = true
	return nil
}
