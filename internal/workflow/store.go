package workflow

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dayu/internal/sim"
	"dayu/internal/vfd"
)

// fileStore holds the persistent contents of one simulated file. Tasks
// open sessions against it; closing a session leaves the contents in
// place for downstream tasks (unlike vfd.MemDriver, whose Close is
// terminal).
type fileStore struct {
	name string
	mu   sync.RWMutex // tasks of a parallel stage may share a file
	data []byte
}

// Size returns the stored file size.
func (s *fileStore) Size() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.data))
}

// copyData snapshots the current contents.
func (s *fileStore) copyData() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]byte(nil), s.data...)
}

// restore replaces the contents, taking ownership of data. Retry
// rollback uses it to rewind a store to its pre-attempt snapshot.
func (s *fileStore) restore(data []byte) {
	s.mu.Lock()
	s.data = data
	s.mu.Unlock()
}

// storeDriver is one open session on a fileStore, implementing
// vfd.Driver. closed is atomic: a parallel stage may close one session
// while another goroutine's session touches the same store.
type storeDriver struct {
	store  *fileStore
	closed atomic.Bool
}

func (d *storeDriver) ReadAt(p []byte, off int64, _ sim.OpClass) error {
	if d.closed.Load() {
		return vfd.ErrClosed
	}
	d.store.mu.RLock()
	defer d.store.mu.RUnlock()
	if off < 0 || off+int64(len(p)) > int64(len(d.store.data)) {
		return fmt.Errorf("workflow: read [%d,%d) beyond EOF %d of %s: %w",
			off, off+int64(len(p)), len(d.store.data), d.store.name, vfd.ErrOutOfBounds)
	}
	copy(p, d.store.data[off:])
	return nil
}

func (d *storeDriver) WriteAt(p []byte, off int64, _ sim.OpClass) error {
	if d.closed.Load() {
		return vfd.ErrClosed
	}
	d.store.mu.Lock()
	defer d.store.mu.Unlock()
	if off < 0 {
		return fmt.Errorf("workflow: negative write offset %d in %s: %w",
			off, d.store.name, vfd.ErrOutOfBounds)
	}
	end := off + int64(len(p))
	for int64(len(d.store.data)) < end {
		d.store.data = append(d.store.data, make([]byte, end-int64(len(d.store.data)))...)
	}
	copy(d.store.data[off:end], p)
	return nil
}

func (d *storeDriver) EOF() int64 { return d.store.Size() }

func (d *storeDriver) Truncate(size int64) error {
	if d.closed.Load() {
		return vfd.ErrClosed
	}
	d.store.mu.Lock()
	defer d.store.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("workflow: negative truncate of %s: %w", d.store.name, vfd.ErrOutOfBounds)
	}
	if size <= int64(len(d.store.data)) {
		d.store.data = d.store.data[:size]
		return nil
	}
	d.store.data = append(d.store.data, make([]byte, size-int64(len(d.store.data)))...)
	return nil
}

func (d *storeDriver) Close() error {
	d.closed.Store(true)
	return nil
}
