package workflow

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"dayu/internal/hdf5"
	"dayu/internal/sim"
	"dayu/internal/tracer"
)

// fanSpec: N writer tasks in one stage, a reader that consumes them all.
func fanSpec(n int, payload []byte) Spec {
	var writers []Task
	for i := 0; i < n; i++ {
		i := i
		writers = append(writers, Task{
			Name: fmt.Sprintf("writer_%02d", i),
			Fn: func(tc *TaskContext) error {
				f, err := tc.Create(fmt.Sprintf("part_%02d.h5", i))
				if err != nil {
					return err
				}
				ds, err := f.Root().CreateDataset("part", hdf5.Uint8, []int64{int64(len(payload))}, nil)
				if err != nil {
					return err
				}
				return ds.WriteAll(payload)
			},
		})
	}
	return Spec{Name: "fan", Stages: []Stage{
		{Name: "write", Tasks: writers},
		{Name: "gather", Tasks: []Task{{Name: "gather", Fn: func(tc *TaskContext) error {
			for i := 0; i < n; i++ {
				f, err := tc.Open(fmt.Sprintf("part_%02d.h5", i))
				if err != nil {
					return err
				}
				ds, err := f.OpenDatasetPath("/part")
				if err != nil {
					return err
				}
				got, err := ds.ReadAll()
				if err != nil {
					return err
				}
				if !bytes.Equal(got, payload) {
					return fmt.Errorf("part %d corrupted", i)
				}
				if err := f.Close(); err != nil {
					return err
				}
			}
			return nil
		}}}},
	}}
}

// TestParallelExecutionMatchesSequential: goroutine execution must yield
// identical virtual timings, traces and op streams (run with -race).
func TestParallelExecutionMatchesSequential(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 32<<10)
	run := func(parallel bool) *Result {
		eng, err := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: 2, Parallel: parallel},
			nil, tracer.Config{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(fanSpec(8, payload))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(false)
	par := run(true)

	if seq.Total() != par.Total() {
		t.Errorf("virtual times differ: seq %v, par %v", seq.Total(), par.Total())
	}
	for _, stage := range []string{"write", "gather"} {
		if seq.StageTime(stage) != par.StageTime(stage) {
			t.Errorf("stage %s differs: %v vs %v", stage, seq.StageTime(stage), par.StageTime(stage))
		}
	}
	// Traces arrive in deterministic task order either way.
	var seqTasks, parTasks []string
	for _, tt := range seq.Traces {
		seqTasks = append(seqTasks, tt.Task)
	}
	for _, tt := range par.Traces {
		parTasks = append(parTasks, tt.Task)
	}
	if !reflect.DeepEqual(seqTasks, parTasks) {
		t.Errorf("trace order differs:\nseq %v\npar %v", seqTasks, parTasks)
	}
	// Op streams per task are identical.
	for task, files := range seq.OpsByTask {
		pfiles := par.OpsByTask[task]
		if len(pfiles) != len(files) {
			t.Fatalf("task %s file count differs", task)
		}
		for file, ops := range files {
			if !reflect.DeepEqual(ops, pfiles[file]) {
				t.Errorf("task %s file %s ops differ", task, file)
			}
		}
	}
}

// TestParallelSharedReaders: all tasks of a stage concurrently read the
// same file (the all-to-all pattern) without corruption.
func TestParallelSharedReaders(t *testing.T) {
	payload := bytes.Repeat([]byte{0x3C}, 64<<10)
	var readers []Task
	for i := 0; i < 8; i++ {
		readers = append(readers, Task{
			Name: fmt.Sprintf("reader_%02d", i),
			Fn: func(tc *TaskContext) error {
				f, err := tc.Open("shared.h5")
				if err != nil {
					return err
				}
				ds, err := f.OpenDatasetPath("/data")
				if err != nil {
					return err
				}
				got, err := ds.ReadAll()
				if err != nil {
					return err
				}
				if !bytes.Equal(got, payload) {
					return fmt.Errorf("shared data corrupted")
				}
				return nil
			},
		})
	}
	eng, err := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: 2, Parallel: true},
		nil, tracer.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Preload("shared.h5", hdf5.Config{}, func(f *hdf5.File) error {
		ds, err := f.Root().CreateDataset("data", hdf5.Uint8, []int64{int64(len(payload))}, nil)
		if err != nil {
			return err
		}
		return ds.WriteAll(payload)
	}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(Spec{Name: "shared", Stages: []Stage{{Name: "read", Tasks: readers}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 8 {
		t.Fatalf("traces = %d", len(res.Traces))
	}
	// Every reader's trace shows the full read volume.
	for _, tt := range res.Traces {
		if tt.Files[0].BytesRead < int64(len(payload)) {
			t.Errorf("task %s read %d bytes", tt.Task, tt.Files[0].BytesRead)
		}
	}
}

// TestParallelErrorPropagation: a failing task in a parallel stage
// surfaces its error.
func TestParallelErrorPropagation(t *testing.T) {
	tasks := []Task{
		{Name: "good", Fn: func(tc *TaskContext) error { return nil }},
		{Name: "bad", Fn: func(tc *TaskContext) error { return fmt.Errorf("kaboom") }},
	}
	eng, _ := NewEngine(Cluster{Machine: sim.MachineCPU, Nodes: 1, Parallel: true}, nil, tracer.Config{})
	_, err := eng.Run(Spec{Name: "e", Stages: []Stage{{Name: "s", Tasks: tasks}}})
	if err == nil {
		t.Fatal("parallel task error swallowed")
	}
	if got := err.Error(); !sort.StringsAreSorted([]string{got}) && got == "" {
		t.Error("empty error")
	}
}
