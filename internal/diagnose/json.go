package diagnose

import (
	"bytes"
	"encoding/json"
)

// jsonFinding is the wire form of a Finding: identical fields, with
// the numeric severity rendered as its string name.
type jsonFinding struct {
	Kind      Kind               `json:"kind"`
	Severity  string             `json:"severity"`
	Guideline Guideline          `json:"guideline"`
	Task      string             `json:"task,omitempty"`
	File      string             `json:"file,omitempty"`
	Object    string             `json:"object,omitempty"`
	Detail    string             `json:"detail"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
}

// EncodeJSON renders findings as an indented JSON array (an empty
// slice encodes as [], never null) terminated by a newline. The CLI
// `dayu diagnose -json` and the serve /v1/diagnose endpoint share this
// encoding, so their outputs are byte-identical for the same traces.
func EncodeJSON(findings []Finding) ([]byte, error) {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			Kind: f.Kind, Severity: f.Severity.String(), Guideline: f.Guideline,
			Task: f.Task, File: f.File, Object: f.Object,
			Detail: f.Detail, Metrics: f.Metrics,
		})
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
