// Package diagnose implements DaYu's Data Flow Diagnostics (paper §VI):
// rule-driven detection of the I/O observations the paper draws from
// FTGs and SDGs - data reuse, time-dependent inputs, disposable data,
// data scattering, metadata-only accesses, layout mismatches - each
// mapped to an optimization guideline from §III-A.
package diagnose

import (
	"fmt"
	"sort"

	"dayu/internal/trace"
)

// Kind identifies a finding rule.
type Kind string

// Finding kinds, one per observation class in §VI.
const (
	// DataReuse: a file or dataset is consumed by multiple tasks
	// (Figure 4 orange edges).
	DataReuse Kind = "data-reuse"
	// WriteAfterRead: a task reads then writes the same file
	// (Figure 4 circle 1).
	WriteAfterRead Kind = "write-after-read"
	// ReadAfterWrite: a task re-reads data it wrote (Figure 6 circle 2).
	ReadAfterWrite Kind = "read-after-write"
	// TimeDependentInput: an input file first needed mid-workflow
	// (Figure 4 circle 2).
	TimeDependentInput Kind = "time-dependent-input"
	// DisposableData: data with at most one consumer, non-critical after
	// processing (Figure 4 blue marks).
	DisposableData Kind = "disposable-data"
	// DataScattering: many small datasets in one file causing frequent
	// metadata access (Figure 5).
	DataScattering Kind = "data-scattering"
	// SmallIORequests: a task's average raw-data access to a file is
	// tiny, the "excessive small I/O requests" of Figure 5.
	SmallIORequests Kind = "small-io-requests"
	// MetadataOnlyAccess: a task touches only a dataset's metadata, not
	// its content (Figure 7's contact_map).
	MetadataOnlyAccess Kind = "metadata-only-access"
	// MetadataOverhead: metadata operations dominate data operations
	// (DDMD's chunked small files).
	MetadataOverhead Kind = "metadata-overhead"
	// ChunkedSmallData: chunked layout on small datasets adds avoidable
	// index overhead.
	ChunkedSmallData Kind = "chunked-small-data"
	// VLenContiguous: large variable-length data in contiguous layout
	// lacks the index metadata that speeds VL access (ARLDM, §VI-C).
	VLenContiguous Kind = "vlen-contiguous"
	// ReadOnlySequential: a task streams a file sequentially without
	// writing (DDMD aggregate/inference).
	ReadOnlySequential Kind = "read-only-sequential"
	// NoDataDependency: consecutive tasks share no data and can run in
	// parallel (DDMD training/inference).
	NoDataDependency Kind = "no-data-dependency"
	// FanInPattern: one task consumes many producers' files (stage-4
	// run_trackstats) - a co-scheduling opportunity.
	FanInPattern Kind = "fan-in-pattern"
	// AllToAllPattern: every task of a stage reads every input file
	// (stage-3 run_gettracks).
	AllToAllPattern Kind = "all-to-all-pattern"
)

// Guideline names the §III-A optimization guideline a finding maps to.
type Guideline string

// Optimization guidelines (paper §III-A).
const (
	GuidelineCaching     Guideline = "customized-caching"
	GuidelinePartial     Guideline = "partial-file-access"
	GuidelinePrefetch    Guideline = "customized-prefetching"
	GuidelineLayout      Guideline = "data-format-optimization"
	GuidelineStageOut    Guideline = "data-stage-out"
	GuidelineParallelize Guideline = "task-parallelization"
	GuidelineCoSchedule  Guideline = "co-scheduling"
)

// Severity ranks findings.
type Severity int

// Severity levels.
const (
	Info Severity = iota
	Warning
	Critical
)

func (s Severity) String() string {
	switch s {
	case Critical:
		return "critical"
	case Warning:
		return "warning"
	}
	return "info"
}

// Finding is one detected observation with its suggested remediation.
type Finding struct {
	Kind      Kind
	Severity  Severity
	Guideline Guideline
	// Task, File and Object locate the finding (may be empty).
	Task   string
	File   string
	Object string
	// Detail is the human-readable explanation.
	Detail string
	// Metrics carries rule-specific numbers for reports and tests.
	Metrics map[string]float64
}

func (f Finding) String() string {
	loc := f.File
	if f.Object != "" {
		loc += "::" + f.Object
	}
	if f.Task != "" {
		loc = f.Task + " " + loc
	}
	return fmt.Sprintf("[%s] %s %s: %s -> %s", f.Severity, f.Kind, loc, f.Detail, f.Guideline)
}

// Thresholds tune the rules; zero values select defaults matching the
// paper's observations.
type Thresholds struct {
	// SmallDatasetBytes is the "small dataset" bound (paper: <500 bytes
	// in PyFLEXTRKR stage 9).
	SmallDatasetBytes int64
	// ScatterMinDatasets is the dataset count per file that counts as
	// scattering.
	ScatterMinDatasets int
	// MetaOpsRatio is the metadata:data op ratio that counts as overhead.
	MetaOpsRatio float64
	// ChunkedSmallBytes is the dataset size below which chunking is
	// considered overhead.
	ChunkedSmallBytes int64
	// VLenLargeBytes is the VL dataset size above which contiguous
	// layout is flagged (paper: ARLDM 6-20 GB; scaled workloads pass a
	// smaller bound).
	VLenLargeBytes int64
	// SequentialRatio is the fraction of sequential ops that counts as
	// streaming.
	SequentialRatio float64
	// SmallAccessBytes is the average raw-data access size below which
	// a file's traffic counts as excessive small I/O.
	SmallAccessBytes int64
	// SmallAccessMinOps avoids flagging files with trivial op counts.
	SmallAccessMinOps int64
}

func (t Thresholds) withDefaults() Thresholds {
	if t.SmallDatasetBytes == 0 {
		t.SmallDatasetBytes = 500
	}
	if t.ScatterMinDatasets == 0 {
		t.ScatterMinDatasets = 16
	}
	if t.MetaOpsRatio == 0 {
		t.MetaOpsRatio = 1.0
	}
	if t.ChunkedSmallBytes == 0 {
		t.ChunkedSmallBytes = 1 << 20
	}
	if t.VLenLargeBytes == 0 {
		t.VLenLargeBytes = 4 << 20
	}
	if t.SequentialRatio == 0 {
		t.SequentialRatio = 0.5
	}
	if t.SmallAccessBytes == 0 {
		t.SmallAccessBytes = 1 << 10
	}
	if t.SmallAccessMinOps == 0 {
		t.SmallAccessMinOps = 32
	}
	return t
}

// Analyze runs every rule over the task traces and returns findings
// sorted by severity (critical first), then kind.
func Analyze(traces []*trace.TaskTrace, m *trace.Manifest, th Thresholds) []Finding {
	th = th.withDefaults()
	ctx := buildContext(traces, m)
	var out []Finding
	out = append(out, detectReuse(ctx)...)
	out = append(out, detectReadWriteOrders(ctx)...)
	out = append(out, detectTimeDependentInputs(ctx)...)
	out = append(out, detectDisposable(ctx)...)
	out = append(out, detectScattering(ctx, th)...)
	out = append(out, detectSmallAccesses(ctx, th)...)
	out = append(out, detectMetadataOnly(ctx)...)
	out = append(out, detectMetadataOverhead(ctx, th)...)
	out = append(out, detectLayoutMismatch(ctx, th)...)
	out = append(out, detectSequentialReaders(ctx, th)...)
	out = append(out, detectIndependentTasks(ctx)...)
	out = append(out, detectAccessPatterns(ctx)...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// ByKind filters findings.
func ByKind(fs []Finding, k Kind) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Kind == k {
			out = append(out, f)
		}
	}
	return out
}
