package diagnose

import (
	"fmt"
	"sort"

	"dayu/internal/trace"
	"dayu/internal/units"
)

// analysisContext indexes the traces for the rules.
type analysisContext struct {
	ordered  []*trace.TaskTrace
	taskIdx  map[string]int
	manifest *trace.Manifest

	// fileReaders/fileWriters map file -> ordered task indices.
	fileReaders map[string][]int
	fileWriters map[string][]int
	// records maps (taskIdx, file) -> file record.
	records map[string]map[string]trace.FileRecord
	// objStats maps file -> object -> per-task mapped stats.
	objStats map[string]map[string][]trace.MappedStat
	// objDescs maps file -> object -> richest object record seen.
	objDescs map[string]map[string]trace.ObjectRecord
}

func buildContext(traces []*trace.TaskTrace, m *trace.Manifest) *analysisContext {
	ordered := append([]*trace.TaskTrace(nil), traces...)
	if m != nil && len(m.TaskOrder) > 0 {
		rank := map[string]int{}
		for i, t := range m.TaskOrder {
			rank[t] = i
		}
		sort.SliceStable(ordered, func(i, j int) bool {
			ri, oki := rank[ordered[i].Task]
			rj, okj := rank[ordered[j].Task]
			if oki && okj {
				return ri < rj
			}
			return ordered[i].StartNS < ordered[j].StartNS
		})
	} else {
		sort.SliceStable(ordered, func(i, j int) bool {
			return ordered[i].StartNS < ordered[j].StartNS
		})
	}

	ctx := &analysisContext{
		ordered:     ordered,
		taskIdx:     map[string]int{},
		manifest:    m,
		fileReaders: map[string][]int{},
		fileWriters: map[string][]int{},
		records:     map[string]map[string]trace.FileRecord{},
		objStats:    map[string]map[string][]trace.MappedStat{},
		objDescs:    map[string]map[string]trace.ObjectRecord{},
	}
	for i, t := range ordered {
		ctx.taskIdx[t.Task] = i
		ctx.records[t.Task] = map[string]trace.FileRecord{}
		for _, fr := range t.Files {
			ctx.records[t.Task][fr.File] = fr
			if fr.Reads > 0 {
				ctx.fileReaders[fr.File] = append(ctx.fileReaders[fr.File], i)
			}
			if fr.Writes > 0 {
				ctx.fileWriters[fr.File] = append(ctx.fileWriters[fr.File], i)
			}
		}
		for _, ms := range t.Mapped {
			if ctx.objStats[ms.File] == nil {
				ctx.objStats[ms.File] = map[string][]trace.MappedStat{}
			}
			ctx.objStats[ms.File][ms.Object] = append(ctx.objStats[ms.File][ms.Object], ms)
		}
		for _, o := range t.Objects {
			if ctx.objDescs[o.File] == nil {
				ctx.objDescs[o.File] = map[string]trace.ObjectRecord{}
			}
			if prev, ok := ctx.objDescs[o.File][o.Object]; !ok || prev.Datatype == "" {
				ctx.objDescs[o.File][o.Object] = o
			}
		}
	}
	return ctx
}

func (c *analysisContext) sortedFiles() []string {
	seen := map[string]bool{}
	var files []string
	add := func(f string) {
		if !seen[f] {
			seen[f] = true
			files = append(files, f)
		}
	}
	for f := range c.fileReaders {
		add(f)
	}
	for f := range c.fileWriters {
		add(f)
	}
	sort.Strings(files)
	return files
}

func distinct(idx []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, i := range idx {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}

// detectReuse flags files (and datasets) consumed by two or more tasks.
func detectReuse(c *analysisContext) []Finding {
	var out []Finding
	for _, file := range c.sortedFiles() {
		readers := distinct(c.fileReaders[file])
		if len(readers) >= 2 {
			out = append(out, Finding{
				Kind: DataReuse, Severity: Warning, Guideline: GuidelineCaching,
				File: file,
				Detail: fmt.Sprintf("file is read by %d tasks; prioritize it in the fastest tier",
					len(readers)),
				Metrics: map[string]float64{"readers": float64(len(readers))},
			})
		}
	}
	return out
}

// detectReadWriteOrders distinguishes write-after-read (a task updates a
// file produced upstream) from read-after-write (a task re-reads its own
// output).
func detectReadWriteOrders(c *analysisContext) []Finding {
	var out []Finding
	for i, t := range c.ordered {
		for file, fr := range c.records[t.Task] {
			// Require real content traffic in both directions: metadata
			// side-effects (symbol-table reads during creation) do not
			// make a task a reader of the file.
			if fr.DataReads == 0 || fr.DataWrites == 0 {
				continue
			}
			writtenUpstream := false
			for _, w := range c.fileWriters[file] {
				if w < i {
					writtenUpstream = true
					break
				}
			}
			if writtenUpstream {
				out = append(out, Finding{
					Kind: WriteAfterRead, Severity: Warning, Guideline: GuidelineCaching,
					Task: t.Task, File: file,
					Detail: "task reads upstream output and writes it back; cache it in memory for the task duration",
				})
			} else {
				out = append(out, Finding{
					Kind: ReadAfterWrite, Severity: Info, Guideline: GuidelineCaching,
					Task: t.Task, File: file,
					Detail: "task re-reads its own output; keep it memory-resident",
				})
			}
		}
	}
	sortFindings(out)
	return out
}

// detectTimeDependentInputs flags pure inputs first needed after the
// workflow has started (Figure 4 circle 2): prefetch can be delayed.
func detectTimeDependentInputs(c *analysisContext) []Finding {
	if len(c.ordered) < 3 {
		return nil
	}
	// With a manifest, "mid-workflow" means a later *stage*, so the
	// parallel tasks of the first stage never flag their own inputs.
	stageRank := map[string]int{}
	if c.manifest != nil {
		for i, stage := range c.manifest.StageOrder {
			for _, task := range c.manifest.Stages[stage] {
				stageRank[task] = i
			}
		}
	}
	position := func(taskIdx int) int {
		if len(stageRank) > 0 {
			if r, ok := stageRank[c.ordered[taskIdx].Task]; ok {
				return r
			}
		}
		return taskIdx
	}
	var out []Finding
	for _, file := range c.sortedFiles() {
		if len(c.fileWriters[file]) > 0 {
			continue // not a pure input
		}
		readers := distinct(c.fileReaders[file])
		if len(readers) == 0 {
			continue
		}
		first := readers[0]
		for _, r := range readers {
			if r < first {
				first = r
			}
		}
		if position(first) > 0 { // not needed by the first task(s)/stage
			out = append(out, Finding{
				Kind: TimeDependentInput, Severity: Info, Guideline: GuidelinePrefetch,
				File: file, Task: c.ordered[first].Task,
				Detail: fmt.Sprintf("input first read by task #%d (%s); delay its prefetch until just before that task",
					first+1, c.ordered[first].Task),
				Metrics: map[string]float64{"first_reader_index": float64(first)},
			})
		}
	}
	return out
}

// detectDisposable flags data that is non-critical once consumed: pure
// inputs, and outputs with at most one consumer (Figure 4 blue marks).
func detectDisposable(c *analysisContext) []Finding {
	var out []Finding
	for _, file := range c.sortedFiles() {
		readers := distinct(c.fileReaders[file])
		writers := distinct(c.fileWriters[file])
		switch {
		case len(writers) == 0 && len(readers) == 1:
			out = append(out, Finding{
				Kind: DisposableData, Severity: Info, Guideline: GuidelineStageOut,
				File:   file,
				Detail: "initial input consumed by a single task; stage it out after processing",
			})
		case len(writers) > 0 && len(readers) == 1:
			out = append(out, Finding{
				Kind: DisposableData, Severity: Info, Guideline: GuidelineStageOut,
				File:   file,
				Detail: "output with a single outgoing consumer; offload to slower storage after use",
			})
		case len(writers) > 0 && len(readers) == 0:
			out = append(out, Finding{
				Kind: DisposableData, Severity: Info, Guideline: GuidelineStageOut,
				File:   file,
				Detail: "output never read back within the workflow; drain it to capacity storage",
			})
		}
	}
	return out
}

// detectScattering flags files holding many small datasets (Figure 5):
// frequent metadata access and excessive small I/O requests.
func detectScattering(c *analysisContext, th Thresholds) []Finding {
	var out []Finding
	var files []string
	for f := range c.objStats {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, file := range files {
		small, total := 0, 0
		var smallBytes int64
		for object, stats := range c.objStats[file] {
			if object == "" {
				continue
			}
			total++
			size := objectDataSize(c, file, object, stats)
			if size > 0 && size < th.SmallDatasetBytes {
				small++
				smallBytes += size
			}
		}
		if small >= th.ScatterMinDatasets {
			out = append(out, Finding{
				Kind: DataScattering, Severity: Critical, Guideline: GuidelineLayout,
				File: file,
				Detail: fmt.Sprintf("%d of %d datasets are smaller than %s; consolidate them into one large dataset and index by offset",
					small, total, units.Bytes(th.SmallDatasetBytes)),
				Metrics: map[string]float64{
					"small_datasets": float64(small),
					"total_datasets": float64(total),
				},
			})
		}
	}
	return out
}

// objectDataSize estimates a dataset's content size from its
// description, falling back to observed data bytes.
func objectDataSize(c *analysisContext, file, object string, stats []trace.MappedStat) int64 {
	if descs := c.objDescs[file]; descs != nil {
		if d, ok := descs[object]; ok && len(d.Shape) > 0 && d.ElemSize > 0 {
			n := int64(1)
			for _, s := range d.Shape {
				n *= s
			}
			return n * d.ElemSize
		}
	}
	var max int64
	for _, ms := range stats {
		if ms.DataBytes > max {
			max = ms.DataBytes
		}
	}
	return max
}

// detectSmallAccesses flags file traffic dominated by tiny raw-data
// operations: the "excessive small I/O requests" Figure 5 calls out,
// which consolidation or larger transfers would amortize.
func detectSmallAccesses(c *analysisContext, th Thresholds) []Finding {
	var out []Finding
	for _, t := range c.ordered {
		files := make([]string, 0, len(c.records[t.Task]))
		for f := range c.records[t.Task] {
			files = append(files, f)
		}
		sort.Strings(files)
		for _, file := range files {
			fr := c.records[t.Task][file]
			if fr.DataOps < th.SmallAccessMinOps {
				continue
			}
			avg := fr.DataBytes / fr.DataOps
			if avg >= th.SmallAccessBytes {
				continue
			}
			out = append(out, Finding{
				Kind: SmallIORequests, Severity: Warning, Guideline: GuidelineLayout,
				Task: t.Task, File: file,
				Detail: fmt.Sprintf("%d raw-data ops average only %s each; batch or consolidate accesses",
					fr.DataOps, units.Bytes(avg)),
				Metrics: map[string]float64{"avg_access_bytes": float64(avg), "data_ops": float64(fr.DataOps)},
			})
		}
	}
	return out
}

// detectMetadataOnly flags accesses that touch a dataset's metadata but
// none of its content (Figure 7: training reads only contact_map's
// metadata), signalling data movement that partial access could avoid.
func detectMetadataOnly(c *analysisContext) []Finding {
	var out []Finding
	for _, t := range c.ordered {
		for _, ms := range t.Mapped {
			if ms.Object == "" || ms.Reads == 0 || ms.DataOps != 0 || ms.MetaOps == 0 {
				continue
			}
			size := objectDataSize(c, ms.File, ms.Object, nil)
			out = append(out, Finding{
				Kind: MetadataOnlyAccess, Severity: Warning, Guideline: GuidelinePartial,
				Task: t.Task, File: ms.File, Object: ms.Object,
				Detail: fmt.Sprintf("task reads only metadata of %s (%s of content untouched); skip staging its data",
					ms.Object, units.Bytes(size)),
				Metrics: map[string]float64{"content_bytes": float64(size)},
			})
		}
	}
	return out
}

// detectMetadataOverhead flags files where metadata operations dominate.
func detectMetadataOverhead(c *analysisContext, th Thresholds) []Finding {
	var out []Finding
	for _, t := range c.ordered {
		files := make([]string, 0, len(c.records[t.Task]))
		for f := range c.records[t.Task] {
			files = append(files, f)
		}
		sort.Strings(files)
		for _, file := range files {
			fr := c.records[t.Task][file]
			if fr.DataOps == 0 || fr.MetaOps == 0 {
				continue
			}
			ratio := float64(fr.MetaOps) / float64(fr.DataOps)
			if ratio > th.MetaOpsRatio {
				out = append(out, Finding{
					Kind: MetadataOverhead, Severity: Warning, Guideline: GuidelineLayout,
					Task: t.Task, File: file,
					Detail: fmt.Sprintf("metadata ops outnumber data ops %.1f:1 (%d vs %d); revisit the storage layout",
						ratio, fr.MetaOps, fr.DataOps),
					Metrics: map[string]float64{"meta_ops_ratio": ratio},
				})
			}
		}
	}
	return out
}

// detectLayoutMismatch applies the §III-A layout guidelines to every
// dataset description: chunked small data and contiguous large VL data
// are both mismatches.
func detectLayoutMismatch(c *analysisContext, th Thresholds) []Finding {
	var out []Finding
	var files []string
	for f := range c.objDescs {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, file := range files {
		var objects []string
		for o := range c.objDescs[file] {
			objects = append(objects, o)
		}
		sort.Strings(objects)
		for _, object := range objects {
			d := c.objDescs[file][object]
			if d.Type != "dataset" {
				continue
			}
			size := objectDataSize(c, file, object, c.objStats[file][object])
			switch {
			case d.Layout == "chunked" && d.Datatype != "vlen" && size > 0 && size < th.ChunkedSmallBytes:
				out = append(out, Finding{
					Kind: ChunkedSmallData, Severity: Warning, Guideline: GuidelineLayout,
					File: file, Object: object,
					Detail: fmt.Sprintf("chunked layout on a %s dataset adds index overhead; use contiguous layout",
						units.Bytes(size)),
					Metrics: map[string]float64{"bytes": float64(size)},
				})
			case d.Layout == "contiguous" && d.Datatype == "vlen" && vlVolume(c, file, object) > th.VLenLargeBytes:
				out = append(out, Finding{
					Kind: VLenContiguous, Severity: Warning, Guideline: GuidelineLayout,
					File: file, Object: object,
					Detail:  "large variable-length dataset in contiguous layout; chunked layout provides the index metadata VL access needs",
					Metrics: map[string]float64{"bytes": float64(vlVolume(c, file, object))},
				})
			}
		}
	}
	return out
}

// vlVolume returns observed payload volume for a VL dataset.
func vlVolume(c *analysisContext, file, object string) int64 {
	if descs := c.objDescs[file]; descs != nil {
		if d, ok := descs[object]; ok {
			if v := d.BytesWritten + d.BytesRead; v > 0 {
				return v
			}
		}
	}
	var total int64
	for _, ms := range c.objStats[file][object] {
		total += ms.DataBytes
	}
	return total
}

// detectSequentialReaders flags read-only streaming consumers, the
// rolling stage-in candidates of §VI-B.
func detectSequentialReaders(c *analysisContext, th Thresholds) []Finding {
	var out []Finding
	for _, t := range c.ordered {
		files := make([]string, 0, len(c.records[t.Task]))
		for f := range c.records[t.Task] {
			files = append(files, f)
		}
		sort.Strings(files)
		for _, file := range files {
			fr := c.records[t.Task][file]
			if fr.Writes > 0 || fr.Reads == 0 || fr.DataOps == 0 {
				continue
			}
			ratio := float64(fr.SequentialOps) / float64(fr.DataOps)
			if ratio >= th.SequentialRatio {
				out = append(out, Finding{
					Kind: ReadOnlySequential, Severity: Info, Guideline: GuidelinePrefetch,
					Task: t.Task, File: file,
					Detail: fmt.Sprintf("read-only sequential access (%.0f%% sequential); use a rolling stage-in to the local tier",
						100*ratio),
					Metrics: map[string]float64{"sequential_ratio": ratio},
				})
			}
		}
	}
	return out
}

// detectIndependentTasks flags consecutive tasks without any shared
// file, which are candidates for parallel execution (Figure 6 circle 3:
// training and inference).
func detectIndependentTasks(c *analysisContext) []Finding {
	var out []Finding
	for i := 1; i < len(c.ordered); i++ {
		a, b := c.ordered[i-1], c.ordered[i]
		// b depends on a when b reads any file a wrote.
		depends := false
		for file, fra := range c.records[a.Task] {
			if fra.Writes == 0 {
				continue
			}
			if frb, ok := c.records[b.Task][file]; ok && frb.Reads > 0 {
				depends = true
				break
			}
		}
		if !depends && len(c.records[a.Task]) > 0 && len(c.records[b.Task]) > 0 {
			out = append(out, Finding{
				Kind: NoDataDependency, Severity: Warning, Guideline: GuidelineParallelize,
				Task:   b.Task,
				Detail: fmt.Sprintf("no data dependency between %q and %q; they can execute in parallel", a.Task, b.Task),
			})
		}
	}
	return out
}

// detectAccessPatterns recognizes the stage-level patterns §VII-C1 uses
// for co-scheduling: all-to-all (every task of a stage reads every
// input) and fan-in (one task consumes many upstream outputs).
func detectAccessPatterns(c *analysisContext) []Finding {
	var out []Finding
	if c.manifest == nil || len(c.manifest.StageOrder) == 0 {
		return out
	}
	for _, stage := range c.manifest.StageOrder {
		tasks := c.manifest.Stages[stage]
		if len(tasks) == 0 {
			continue
		}
		// Collect files read by each stage task.
		readSets := map[string]map[string]bool{}
		union := map[string]bool{}
		for _, task := range tasks {
			rs := map[string]bool{}
			for file, fr := range c.records[task] {
				// Count only genuine content consumption; the metadata
				// reads that accompany file creation do not make the
				// creating task a consumer.
				if fr.DataReads > 0 {
					rs[file] = true
					union[file] = true
				}
			}
			readSets[task] = rs
		}
		if len(union) == 0 {
			continue
		}
		if len(tasks) >= 2 {
			allToAll := true
			for _, task := range tasks {
				if len(readSets[task]) != len(union) {
					allToAll = false
					break
				}
			}
			if allToAll && len(union) >= 2 {
				out = append(out, Finding{
					Kind: AllToAllPattern, Severity: Info, Guideline: GuidelineCoSchedule,
					Task: stage,
					Detail: fmt.Sprintf("all %d tasks of stage %q read all %d input files; parallelizable with shared staging",
						len(tasks), stage, len(union)),
				})
			}
		}
		if len(tasks) == 1 && len(union) >= 3 {
			task := tasks[0]
			producers := map[string]bool{}
			for file := range readSets[task] {
				for _, w := range c.fileWriters[file] {
					if w < c.taskIdx[task] {
						producers[c.ordered[w].Task] = true
					}
				}
			}
			if len(producers) >= 2 {
				out = append(out, Finding{
					Kind: FanInPattern, Severity: Info, Guideline: GuidelineCoSchedule,
					Task: task,
					Detail: fmt.Sprintf("task %q fans in %d files from %d producers; co-schedule it with the producing node",
						task, len(union), len(producers)),
				})
			}
		}
	}
	return out
}

func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Task != fs[j].Task {
			return fs[i].Task < fs[j].Task
		}
		return fs[i].File < fs[j].File
	})
}
