package diagnose

import (
	"strings"
	"testing"

	"dayu/internal/trace"
)

// mkTrace builds a minimal trace with one file record.
func mkTrace(task string, start int64, files ...trace.FileRecord) *trace.TaskTrace {
	for i := range files {
		files[i].Task = task
		files[i].Ops = files[i].MetaOps + files[i].DataOps
		// Tests describe content traffic; mirror it into the raw-data
		// directional counters the rules use.
		if files[i].DataReads == 0 && files[i].BytesRead > 0 {
			files[i].DataReads = files[i].Reads
		}
		if files[i].DataWrites == 0 && files[i].BytesWritten > 0 {
			files[i].DataWrites = files[i].Writes
		}
	}
	return &trace.TaskTrace{Task: task, StartNS: start, EndNS: start + 100, Files: files}
}

func TestDetectReuseAndDisposable(t *testing.T) {
	traces := []*trace.TaskTrace{
		mkTrace("t1", 0, trace.FileRecord{File: "shared.h5", Writes: 2, BytesWritten: 100, DataOps: 2}),
		mkTrace("t2", 100,
			trace.FileRecord{File: "shared.h5", Reads: 2, BytesRead: 100, DataOps: 2},
			trace.FileRecord{File: "once.h5", Writes: 1, BytesWritten: 10, DataOps: 1}),
		mkTrace("t3", 200,
			trace.FileRecord{File: "shared.h5", Reads: 1, BytesRead: 100, DataOps: 1},
			trace.FileRecord{File: "once.h5", Reads: 1, BytesRead: 10, DataOps: 1}),
	}
	fs := Analyze(traces, nil, Thresholds{})
	reuse := ByKind(fs, DataReuse)
	if len(reuse) != 1 || reuse[0].File != "shared.h5" {
		t.Fatalf("reuse = %+v", reuse)
	}
	if reuse[0].Guideline != GuidelineCaching {
		t.Error("reuse guideline wrong")
	}
	disp := ByKind(fs, DisposableData)
	var onceFound bool
	for _, f := range disp {
		if f.File == "once.h5" {
			onceFound = true
		}
		if f.File == "shared.h5" {
			t.Error("multi-consumer file marked disposable")
		}
	}
	if !onceFound {
		t.Errorf("once.h5 not disposable: %+v", disp)
	}
}

func TestDetectReadWriteOrders(t *testing.T) {
	traces := []*trace.TaskTrace{
		mkTrace("producer", 0, trace.FileRecord{File: "a.h5", Writes: 1, BytesWritten: 10, DataOps: 1}),
		mkTrace("updater", 100, trace.FileRecord{File: "a.h5", Reads: 1, Writes: 1,
			BytesRead: 10, BytesWritten: 10, DataOps: 2}),
		mkTrace("selfreader", 200, trace.FileRecord{File: "own.h5", Reads: 1, Writes: 1,
			BytesRead: 5, BytesWritten: 5, DataOps: 2}),
	}
	fs := Analyze(traces, nil, Thresholds{})
	war := ByKind(fs, WriteAfterRead)
	if len(war) != 1 || war[0].Task != "updater" {
		t.Fatalf("write-after-read = %+v", war)
	}
	raw := ByKind(fs, ReadAfterWrite)
	if len(raw) != 1 || raw[0].Task != "selfreader" {
		t.Fatalf("read-after-write = %+v", raw)
	}
}

func TestDetectTimeDependentInput(t *testing.T) {
	traces := []*trace.TaskTrace{
		mkTrace("t1", 0, trace.FileRecord{File: "early.h5", Reads: 1, BytesRead: 5, DataOps: 1}),
		mkTrace("t2", 100),
		mkTrace("t3", 200, trace.FileRecord{File: "late.h5", Reads: 1, BytesRead: 5, DataOps: 1}),
	}
	fs := Analyze(traces, nil, Thresholds{})
	tdi := ByKind(fs, TimeDependentInput)
	if len(tdi) != 1 || tdi[0].File != "late.h5" {
		t.Fatalf("time-dependent = %+v", tdi)
	}
	if tdi[0].Guideline != GuidelinePrefetch {
		t.Error("guideline wrong")
	}
}

func TestDetectScattering(t *testing.T) {
	tt := &trace.TaskTrace{Task: "stage9", StartNS: 0, EndNS: 100}
	tt.Files = []trace.FileRecord{{Task: "stage9", File: "stats.h5",
		Reads: 64, BytesRead: 64 * 400, MetaOps: 32, DataOps: 32, Ops: 64}}
	for i := 0; i < 32; i++ {
		name := "/small" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		tt.Mapped = append(tt.Mapped, trace.MappedStat{
			Task: "stage9", File: "stats.h5", Object: name,
			DataOps: 1, DataBytes: 400, Reads: 1,
		})
		tt.Objects = append(tt.Objects, trace.ObjectRecord{
			Task: "stage9", File: "stats.h5", Object: name, Type: "dataset",
			Datatype: "float64", Shape: []int64{50}, ElemSize: 8, Layout: "contiguous",
		})
	}
	fs := Analyze([]*trace.TaskTrace{tt}, nil, Thresholds{})
	sc := ByKind(fs, DataScattering)
	if len(sc) != 1 {
		t.Fatalf("scattering = %+v", sc)
	}
	if sc[0].Severity != Critical || sc[0].Guideline != GuidelineLayout {
		t.Error("scattering metadata wrong")
	}
	if sc[0].Metrics["small_datasets"] != 32 {
		t.Errorf("metrics = %v", sc[0].Metrics)
	}
	// With a stricter threshold there is no finding.
	fs2 := Analyze([]*trace.TaskTrace{tt}, nil, Thresholds{ScatterMinDatasets: 64})
	if len(ByKind(fs2, DataScattering)) != 0 {
		t.Error("threshold ignored")
	}
}

func TestDetectMetadataOnlyAccess(t *testing.T) {
	producer := &trace.TaskTrace{Task: "agg", StartNS: 0, EndNS: 100,
		Files: []trace.FileRecord{{Task: "agg", File: "agg.h5", Writes: 4,
			BytesWritten: 1 << 20, DataOps: 4, Ops: 4}},
		Objects: []trace.ObjectRecord{{Task: "agg", File: "agg.h5", Object: "/contact_map",
			Type: "dataset", Datatype: "float32", Shape: []int64{1 << 18}, ElemSize: 4,
			Layout: "chunked", Writes: 1, BytesWritten: 1 << 20}},
		Mapped: []trace.MappedStat{{Task: "agg", File: "agg.h5", Object: "/contact_map",
			DataOps: 4, DataBytes: 1 << 20, Writes: 4}},
	}
	training := &trace.TaskTrace{Task: "training", StartNS: 100, EndNS: 200,
		Files: []trace.FileRecord{{Task: "training", File: "agg.h5", Reads: 1,
			BytesRead: 512, MetaOps: 1, Ops: 1}},
		Mapped: []trace.MappedStat{{Task: "training", File: "agg.h5", Object: "/contact_map",
			MetaOps: 1, MetaBytes: 512, Reads: 1}},
	}
	fs := Analyze([]*trace.TaskTrace{producer, training}, nil, Thresholds{})
	mo := ByKind(fs, MetadataOnlyAccess)
	if len(mo) != 1 || mo[0].Task != "training" || mo[0].Object != "/contact_map" {
		t.Fatalf("metadata-only = %+v", mo)
	}
	if mo[0].Guideline != GuidelinePartial {
		t.Error("guideline wrong")
	}
	if mo[0].Metrics["content_bytes"] != float64(1<<20) {
		t.Errorf("content bytes = %v", mo[0].Metrics)
	}
}

func TestDetectMetadataOverheadAndLayouts(t *testing.T) {
	tt := &trace.TaskTrace{Task: "openmm", StartNS: 0, EndNS: 100,
		Files: []trace.FileRecord{{Task: "openmm", File: "sim.h5",
			Writes: 30, BytesWritten: 200 << 10, MetaOps: 20, DataOps: 10, Ops: 30}},
		Objects: []trace.ObjectRecord{
			{Task: "openmm", File: "sim.h5", Object: "/rmsd", Type: "dataset",
				Datatype: "float32", Shape: []int64{1000}, ElemSize: 4, Layout: "chunked"},
			{Task: "openmm", File: "sim.h5", Object: "/story", Type: "dataset",
				Datatype: "vlen", Shape: []int64{100}, Layout: "contiguous",
				Writes: 1, BytesWritten: 100 << 20},
		},
	}
	fs := Analyze([]*trace.TaskTrace{tt}, nil, Thresholds{})
	if len(ByKind(fs, MetadataOverhead)) != 1 {
		t.Errorf("metadata overhead missing: %+v", fs)
	}
	csd := ByKind(fs, ChunkedSmallData)
	if len(csd) != 1 || csd[0].Object != "/rmsd" {
		t.Errorf("chunked-small = %+v", csd)
	}
	vc := ByKind(fs, VLenContiguous)
	if len(vc) != 1 || vc[0].Object != "/story" {
		t.Errorf("vlen-contiguous = %+v", vc)
	}
}

func TestDetectSequentialAndIndependent(t *testing.T) {
	traces := []*trace.TaskTrace{
		mkTrace("aggregate", 0, trace.FileRecord{File: "sim.h5",
			Reads: 10, BytesRead: 1 << 20, DataOps: 10, SequentialOps: 9}),
		mkTrace("training", 100, trace.FileRecord{File: "train.h5",
			Reads: 2, BytesRead: 100, DataOps: 2}),
		mkTrace("inference", 200, trace.FileRecord{File: "infer.h5",
			Reads: 2, BytesRead: 100, DataOps: 2}),
	}
	fs := Analyze(traces, nil, Thresholds{})
	seq := ByKind(fs, ReadOnlySequential)
	if len(seq) == 0 || seq[0].Task != "aggregate" {
		t.Fatalf("sequential = %+v", seq)
	}
	ind := ByKind(fs, NoDataDependency)
	if len(ind) < 1 {
		t.Fatalf("independent = %+v", ind)
	}
	var trainInfer bool
	for _, f := range ind {
		if strings.Contains(f.Detail, `"training"`) && strings.Contains(f.Detail, `"inference"`) {
			trainInfer = true
		}
	}
	if !trainInfer {
		t.Errorf("training/inference independence not found: %+v", ind)
	}
}

func TestDetectAccessPatterns(t *testing.T) {
	traces := []*trace.TaskTrace{
		mkTrace("gen1", 0, trace.FileRecord{File: "c1.h5", Writes: 1, BytesWritten: 10, DataOps: 1}),
		mkTrace("gen2", 50, trace.FileRecord{File: "c2.h5", Writes: 1, BytesWritten: 10, DataOps: 1}),
		mkTrace("gen3", 60, trace.FileRecord{File: "c3.h5", Writes: 1, BytesWritten: 10, DataOps: 1}),
		mkTrace("track1", 100,
			trace.FileRecord{File: "c1.h5", Reads: 1, BytesRead: 10, DataOps: 1},
			trace.FileRecord{File: "c2.h5", Reads: 1, BytesRead: 10, DataOps: 1}),
		mkTrace("track2", 100,
			trace.FileRecord{File: "c1.h5", Reads: 1, BytesRead: 10, DataOps: 1},
			trace.FileRecord{File: "c2.h5", Reads: 1, BytesRead: 10, DataOps: 1}),
		mkTrace("stats", 200,
			trace.FileRecord{File: "c1.h5", Reads: 1, BytesRead: 10, DataOps: 1},
			trace.FileRecord{File: "c2.h5", Reads: 1, BytesRead: 10, DataOps: 1},
			trace.FileRecord{File: "c3.h5", Reads: 1, BytesRead: 10, DataOps: 1}),
	}
	m := &trace.Manifest{
		Workflow:  "pft",
		TaskOrder: []string{"gen1", "gen2", "gen3", "track1", "track2", "stats"},
		Stages: map[string][]string{
			"gen":    {"gen1", "gen2", "gen3"},
			"tracks": {"track1", "track2"},
			"stats":  {"stats"},
		},
		StageOrder: []string{"gen", "tracks", "stats"},
	}
	fs := Analyze(traces, m, Thresholds{})
	ata := ByKind(fs, AllToAllPattern)
	if len(ata) != 1 || ata[0].Task != "tracks" {
		t.Fatalf("all-to-all = %+v", ata)
	}
	fin := ByKind(fs, FanInPattern)
	if len(fin) != 1 || fin[0].Task != "stats" {
		t.Fatalf("fan-in = %+v", fin)
	}
	for _, f := range append(ata, fin...) {
		if f.Guideline != GuidelineCoSchedule {
			t.Error("pattern guideline wrong")
		}
	}
	// Without a manifest, pattern rules stay silent.
	fs2 := Analyze(traces, nil, Thresholds{})
	if len(ByKind(fs2, AllToAllPattern))+len(ByKind(fs2, FanInPattern)) != 0 {
		t.Error("patterns detected without manifest")
	}
}

func TestFindingsSortedBySeverity(t *testing.T) {
	tt := &trace.TaskTrace{Task: "x", StartNS: 0, EndNS: 100}
	tt.Files = []trace.FileRecord{{Task: "x", File: "f.h5",
		Reads: 40, BytesRead: 40 * 100, MetaOps: 20, DataOps: 20, Ops: 40, SequentialOps: 30}}
	for i := 0; i < 20; i++ {
		name := "/tiny" + string(rune('a'+i))
		tt.Mapped = append(tt.Mapped, trace.MappedStat{Task: "x", File: "f.h5", Object: name,
			DataOps: 1, DataBytes: 100, Reads: 1})
		tt.Objects = append(tt.Objects, trace.ObjectRecord{Task: "x", File: "f.h5",
			Object: name, Type: "dataset", Shape: []int64{10}, ElemSize: 8})
	}
	fs := Analyze([]*trace.TaskTrace{tt}, nil, Thresholds{})
	if len(fs) < 2 {
		t.Fatalf("findings = %d", len(fs))
	}
	for i := 1; i < len(fs); i++ {
		if fs[i].Severity > fs[i-1].Severity {
			t.Fatal("findings not sorted by severity")
		}
	}
	// String formatting is informative.
	s := fs[0].String()
	if !strings.Contains(s, string(fs[0].Kind)) || !strings.Contains(s, string(fs[0].Guideline)) {
		t.Errorf("finding string = %q", s)
	}
}

func TestDetectSmallIORequests(t *testing.T) {
	small := mkTrace("reader", 0, trace.FileRecord{File: "tiny.h5",
		Reads: 100, BytesRead: 100 * 200, DataOps: 100, DataBytes: 100 * 200})
	big := mkTrace("bulk", 100, trace.FileRecord{File: "bulk.h5",
		Reads: 100, BytesRead: 100 << 20, DataOps: 100, DataBytes: 100 << 20})
	few := mkTrace("few", 200, trace.FileRecord{File: "few.h5",
		Reads: 4, BytesRead: 4 * 100, DataOps: 4, DataBytes: 4 * 100})
	fs := Analyze([]*trace.TaskTrace{small, big, few}, nil, Thresholds{})
	got := ByKind(fs, SmallIORequests)
	if len(got) != 1 || got[0].File != "tiny.h5" {
		t.Fatalf("small-io = %+v", got)
	}
	if got[0].Guideline != GuidelineLayout {
		t.Error("guideline wrong")
	}
	if got[0].Metrics["avg_access_bytes"] != 200 {
		t.Errorf("metrics = %v", got[0].Metrics)
	}
}
