package diagnose

import (
	"encoding/json"
	"strings"
	"testing"

	"dayu/internal/trace"
)

// TestAnalyzeEdgeCases drives Analyze through degenerate inputs that
// the rule implementations must tolerate without panicking or emitting
// spurious findings: no traces at all, a trace with no I/O, a single
// task, and a written file that no task ever reads back.
func TestAnalyzeEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		traces []*trace.TaskTrace
		m      *trace.Manifest
		check  func(t *testing.T, fs []Finding)
	}{
		{
			name:   "nil traces",
			traces: nil,
			check: func(t *testing.T, fs []Finding) {
				if len(fs) != 0 {
					t.Errorf("findings from nothing: %+v", fs)
				}
			},
		},
		{
			name:   "empty trace no io",
			traces: []*trace.TaskTrace{{Task: "idle", StartNS: 0, EndNS: 100}},
			check: func(t *testing.T, fs []Finding) {
				if len(fs) != 0 {
					t.Errorf("findings from an I/O-free trace: %+v", fs)
				}
			},
		},
		{
			name: "single task",
			traces: []*trace.TaskTrace{
				mkTrace("solo", 0,
					trace.FileRecord{File: "in.h5", Reads: 2, BytesRead: 100, DataOps: 2},
					trace.FileRecord{File: "out.h5", Writes: 2, BytesWritten: 100, DataOps: 2}),
			},
			check: func(t *testing.T, fs []Finding) {
				// One task cannot reuse, order-depend, or parallelize.
				for _, k := range []Kind{DataReuse, TimeDependentInput, NoDataDependency,
					WriteAfterRead, FanInPattern, AllToAllPattern} {
					if got := ByKind(fs, k); len(got) != 0 {
						t.Errorf("single task produced %s: %+v", k, got)
					}
				}
				// Its unread output is disposable.
				disp := ByKind(fs, DisposableData)
				var out bool
				for _, f := range disp {
					if f.File == "out.h5" {
						out = true
					}
				}
				if !out {
					t.Errorf("solo output not disposable: %+v", disp)
				}
			},
		},
		{
			name: "writer without reader",
			traces: []*trace.TaskTrace{
				mkTrace("producer", 0, trace.FileRecord{File: "orphan.h5",
					Writes: 4, BytesWritten: 1 << 10, DataOps: 4}),
				mkTrace("bystander", 100, trace.FileRecord{File: "other.h5",
					Reads: 1, BytesRead: 10, DataOps: 1}),
			},
			check: func(t *testing.T, fs []Finding) {
				disp := ByKind(fs, DisposableData)
				var orphan bool
				for _, f := range disp {
					if f.File == "orphan.h5" {
						orphan = true
						if f.Guideline != GuidelineStageOut {
							t.Errorf("orphan guideline = %s, want %s", f.Guideline, GuidelineStageOut)
						}
					}
				}
				if !orphan {
					t.Errorf("never-read output not flagged disposable: %+v", disp)
				}
				// The write must not be misread as reuse or a read-order issue.
				if got := ByKind(fs, DataReuse); len(got) != 0 {
					t.Errorf("unread file counted as reuse: %+v", got)
				}
				if got := ByKind(fs, ReadAfterWrite); len(got) != 0 {
					t.Errorf("pure writer flagged read-after-write: %+v", got)
				}
			},
		},
		{
			name: "manifest naming absent tasks",
			traces: []*trace.TaskTrace{
				mkTrace("real", 0, trace.FileRecord{File: "a.h5", Reads: 1, BytesRead: 10, DataOps: 1}),
			},
			m: &trace.Manifest{Workflow: "w", TaskOrder: []string{"ghost", "real"},
				Stages: map[string][]string{"s": {"ghost", "real"}}, StageOrder: []string{"s"}},
			check: func(t *testing.T, fs []Finding) {
				// Must not panic or invent findings for the missing task.
				for _, f := range fs {
					if f.Task == "ghost" {
						t.Errorf("finding for task with no trace: %+v", f)
					}
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.check(t, Analyze(tc.traces, tc.m, Thresholds{}))
		})
	}
}

func TestEncodeJSON(t *testing.T) {
	empty, err := EncodeJSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(empty) != "[]\n" {
		t.Errorf("empty encoding = %q, want %q", empty, "[]\n")
	}

	fs := []Finding{{
		Kind: DataReuse, Severity: Warning, Guideline: GuidelineCaching,
		File: "shared.h5", Detail: "2 readers", Metrics: map[string]float64{"readers": 2},
	}}
	b, err := EncodeJSON(fs)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("invalid JSON %q: %v", b, err)
	}
	if len(decoded) != 1 {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded[0]["severity"] != "warning" {
		t.Errorf("severity = %v, want string name", decoded[0]["severity"])
	}
	if decoded[0]["kind"] != string(DataReuse) {
		t.Errorf("kind = %v", decoded[0]["kind"])
	}
	if _, ok := decoded[0]["task"]; ok {
		t.Error("empty task field not omitted")
	}
	if !strings.HasSuffix(string(b), "\n") {
		t.Error("encoding lacks trailing newline")
	}
}
