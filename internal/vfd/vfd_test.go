package vfd

import (
	"bytes"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"dayu/internal/semantics"
	"dayu/internal/sim"
)

func TestMemDriverReadWrite(t *testing.T) {
	d := NewMemDriver()
	if d.EOF() != 0 {
		t.Fatal("fresh driver not empty")
	}
	data := []byte("hello, dayu")
	if err := d.WriteAt(data, 5, sim.RawData); err != nil {
		t.Fatal(err)
	}
	if d.EOF() != 5+int64(len(data)) {
		t.Fatalf("EOF = %d", d.EOF())
	}
	got := make([]byte, len(data))
	if err := d.ReadAt(got, 5, sim.RawData); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	// The gap [0,5) must read back zeroed.
	gap := make([]byte, 5)
	if err := d.ReadAt(gap, 0, sim.RawData); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gap, make([]byte, 5)) {
		t.Fatalf("gap not zeroed: %v", gap)
	}
}

func TestMemDriverErrors(t *testing.T) {
	d := NewMemDriver()
	if err := d.ReadAt(make([]byte, 1), 0, sim.RawData); err == nil {
		t.Error("read past EOF succeeded")
	}
	if err := d.ReadAt(make([]byte, 1), -1, sim.RawData); err == nil {
		t.Error("negative-offset read succeeded")
	}
	if err := d.WriteAt([]byte{1}, -1, sim.RawData); err == nil {
		t.Error("negative-offset write succeeded")
	}
	if err := d.Truncate(-1); err == nil {
		t.Error("negative truncate succeeded")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt([]byte{1}, 0, sim.RawData); err != ErrClosed {
		t.Errorf("write after close: %v", err)
	}
	if err := d.ReadAt(make([]byte, 1), 0, sim.RawData); err != ErrClosed {
		t.Errorf("read after close: %v", err)
	}
	if err := d.Truncate(0); err != ErrClosed {
		t.Errorf("truncate after close: %v", err)
	}
}

func TestMemDriverTruncate(t *testing.T) {
	d := NewMemDriverFrom([]byte("abcdef"))
	if err := d.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if d.EOF() != 3 {
		t.Fatalf("EOF after shrink = %d", d.EOF())
	}
	if err := d.Truncate(6); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if err := d.ReadAt(got, 0, sim.RawData); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{'a', 'b', 'c', 0, 0, 0}) {
		t.Fatalf("grown contents: %q", got)
	}
}

// TestMemDriverTruncateWriteHoleZeroed is the regression test for the
// stale-data hole: after Truncate shrinks the buffer, a WriteAt past
// EOF that still fits in cap(d.buf) used to reslice over the
// pre-truncate bytes, exposing old data in the hole [oldLen, off)
// instead of zeros.
func TestMemDriverTruncateWriteHoleZeroed(t *testing.T) {
	d := NewMemDriver()
	marker := bytes.Repeat([]byte{0xAB}, 64)
	if err := d.WriteAt(marker, 0, sim.RawData); err != nil {
		t.Fatal(err)
	}
	if err := d.Truncate(0); err != nil {
		t.Fatal(err)
	}
	// Write a few bytes at an offset well past EOF but inside the old
	// capacity: the hole [0, 32) must read back as zeros, not 0xAB.
	if err := d.WriteAt([]byte{1, 2, 3}, 32, sim.RawData); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 35)
	if err := d.ReadAt(got, 0, sim.RawData); err != nil {
		t.Fatal(err)
	}
	want := append(make([]byte, 32), 1, 2, 3)
	if !bytes.Equal(got, want) {
		t.Fatalf("hole not zeroed after truncate+write: %v", got)
	}

	// Same hole via Truncate growth instead of WriteAt.
	if err := d.Truncate(0); err != nil {
		t.Fatal(err)
	}
	if err := d.Truncate(48); err != nil {
		t.Fatal(err)
	}
	got = make([]byte, 48)
	if err := d.ReadAt(got, 0, sim.RawData); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, 48)) {
		t.Fatalf("regrown region not zeroed: %v", got)
	}

	// A partial shrink keeps surviving bytes and zeroes only the hole.
	if err := d.WriteAt(marker, 0, sim.RawData); err != nil {
		t.Fatal(err)
	}
	if err := d.Truncate(8); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt([]byte{9}, 16, sim.RawData); err != nil {
		t.Fatal(err)
	}
	got = make([]byte, 17)
	if err := d.ReadAt(got, 0, sim.RawData); err != nil {
		t.Fatal(err)
	}
	want = append(bytes.Repeat([]byte{0xAB}, 8), make([]byte, 8)...)
	want = append(want, 9)
	if !bytes.Equal(got, want) {
		t.Fatalf("partial shrink contents wrong: %v", got)
	}
}

func TestMemDriverPropertyRoundTrip(t *testing.T) {
	// Writing arbitrary data at an arbitrary (bounded) offset then reading
	// it back yields the same bytes.
	f := func(data []byte, off uint16) bool {
		d := NewMemDriver()
		if err := d.WriteAt(data, int64(off), sim.RawData); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := d.ReadAt(got, int64(off), sim.RawData); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFileDriver(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.h5")
	d, err := OpenFileDriver(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt([]byte("persist"), 0, sim.RawData); err != nil {
		t.Fatal(err)
	}
	if d.EOF() != 7 {
		t.Fatalf("EOF = %d", d.EOF())
	}
	got := make([]byte, 7)
	if err := d.ReadAt(got, 0, sim.RawData); err != nil {
		t.Fatal(err)
	}
	if string(got) != "persist" {
		t.Fatalf("got %q", got)
	}
	if err := d.Truncate(3); err != nil {
		t.Fatal(err)
	}
	if d.EOF() != 3 {
		t.Fatalf("EOF after truncate = %d", d.EOF())
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Error("double close errored:", err)
	}
	if err := d.WriteAt([]byte{1}, 0, sim.RawData); err != ErrClosed {
		t.Errorf("write after close: %v", err)
	}
}

func TestProfiledDriverRecordsOps(t *testing.T) {
	log := &OpLog{}
	mb := semantics.NewMailbox()
	base := time.Unix(1000, 0)
	d := NewProfiledDriver(NewMemDriver(), "trace.h5", mb, log)
	d.SetTimeSource(func() time.Time { return base })

	exit := mb.Enter(semantics.Context{Object: "/g/ds", File: "trace.h5", Task: "t0"})
	if err := d.WriteAt(make([]byte, 128), 0, sim.RawData); err != nil {
		t.Fatal(err)
	}
	exit()
	if err := d.WriteAt(make([]byte, 16), 128, sim.Metadata); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := d.ReadAt(buf, 0, sim.RawData); err != nil {
		t.Fatal(err)
	}

	if len(log.Ops) != 3 {
		t.Fatalf("recorded %d ops, want 3", len(log.Ops))
	}
	w := log.Ops[0]
	if !w.Write || w.Offset != 0 || w.Length != 128 || w.Class != sim.RawData {
		t.Fatalf("op0 = %+v", w)
	}
	if w.Object != "/g/ds" || w.Task != "t0" || w.File != "trace.h5" {
		t.Fatalf("op0 semantics = %+v", w)
	}
	if w.End() != 128 {
		t.Fatalf("End() = %d", w.End())
	}
	if !w.Wall.Equal(base) {
		t.Fatal("time source not used")
	}
	meta := log.Ops[1]
	if meta.Class != sim.Metadata || meta.Object != semantics.NoObject {
		t.Fatalf("op1 = %+v", meta)
	}
	r := log.Ops[2]
	if r.Write || r.Length != 64 {
		t.Fatalf("op2 = %+v", r)
	}
	// Sequence numbers are dense and ordered.
	for i, op := range log.Ops {
		if op.Seq != int64(i) {
			t.Fatalf("seq %d at index %d", op.Seq, i)
		}
	}
}

func TestProfiledDriverErrorsNotRecorded(t *testing.T) {
	log := &OpLog{}
	d := NewProfiledDriver(NewMemDriver(), "x", nil, log)
	if err := d.ReadAt(make([]byte, 4), 0, sim.RawData); err == nil {
		t.Fatal("expected read error")
	}
	if len(log.Ops) != 0 {
		t.Fatal("failed op was recorded")
	}
}

func TestProfiledDriverNilObserverPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil observer accepted")
		}
	}()
	NewProfiledDriver(NewMemDriver(), "x", nil, nil)
}

func TestOpLogSimOps(t *testing.T) {
	log := &OpLog{Ops: []Op{
		{Offset: 0, Length: 10, Write: true, Class: sim.Metadata},
		{Offset: 10, Length: 20, Class: sim.RawData},
	}}
	ops := log.SimOps()
	if len(ops) != 2 || ops[0].Bytes != 10 || !ops[0].Write || ops[1].Class != sim.RawData {
		t.Fatalf("SimOps = %+v", ops)
	}
	log.Reset()
	if len(log.Ops) != 0 {
		t.Fatal("Reset failed")
	}
}

func TestObserverFunc(t *testing.T) {
	var n int
	ObserverFunc(func(Op) { n++ }).Observe(Op{})
	if n != 1 {
		t.Fatal("ObserverFunc not invoked")
	}
}
