package vfd

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"dayu/internal/sim"
)

// Rate is a per-op-class fault probability: raw-data and metadata
// operations can fault at different rates (metadata-server hiccups and
// data-path errors are distinct failure modes on real parallel
// filesystems).
type Rate struct {
	Data float64
	Meta float64
}

// Uniform returns a Rate applying p to both op classes.
func Uniform(p float64) Rate { return Rate{Data: p, Meta: p} }

func (r Rate) of(class sim.OpClass) float64 {
	if class == sim.Metadata {
		return r.Meta
	}
	return r.Data
}

// FaultPlan configures deterministic fault injection at the VFD seam -
// the same interposition point as the profiling decorator, so failure
// paths are exercised exactly where DaYu observes I/O. All randomness
// derives from seeds, so a given (seed, op stream) pair always injects
// the same faults: workflow runs under fault injection are replayable.
type FaultPlan struct {
	// Seed is the base seed; per-session seeds are derived from it (see
	// DeriveSeed) so fault placement is independent of goroutine
	// interleaving under parallel stage execution.
	Seed int64
	// ReadError and WriteError are per-operation probabilities of a
	// transient failure (the op does not touch the file and returns an
	// error wrapping ErrTransient), split by op class.
	ReadError  Rate
	WriteError Rate
	// TornWrite is the probability that a write is torn: a strict prefix
	// of the buffer reaches the file before the operation fails with
	// ErrTransient. The partial write goes through the inner driver, so
	// when the fault layer wraps the profiler the failure-path I/O is
	// traced like any other operation.
	TornWrite float64
	// CorruptRead is the probability that a read completes "successfully"
	// but returns silently bit-flipped data; format-level magic and
	// sanity checks surface it later as ErrCorrupt.
	CorruptRead float64
	// FailStopAfter, when positive, makes every operation after the Nth
	// on a session fail with ErrFailStop: the device (or node) died and
	// stays dead for that session. A retry on a fresh session models
	// rescheduling onto a recovered or different instance.
	FailStopAfter int64
	// Latency is extra virtual time billed per injected fault, modeling
	// timeout-and-error paths that are slower than clean completions. The
	// driver only accumulates it (Stats().InjectedLatency); the workflow
	// engine bills it into the task's simulated I/O time.
	Latency time.Duration
}

// Enabled reports whether the plan injects any faults at all.
func (p FaultPlan) Enabled() bool {
	return p.ReadError != (Rate{}) || p.WriteError != (Rate{}) ||
		p.TornWrite > 0 || p.CorruptRead > 0 || p.FailStopAfter > 0
}

// FaultStats counts what a FaultDriver injected.
type FaultStats struct {
	// Ops is the number of read/write operations that reached the driver.
	Ops int64
	// Injected fault counts by kind.
	TransientReads  int64
	TransientWrites int64
	TornWrites      int64
	CorruptReads    int64
	FailStops       int64
	// InjectedLatency is the accumulated virtual latency of all injected
	// faults (Plan.Latency per fault).
	InjectedLatency time.Duration
}

// Faults is the total number of injected fault events.
func (s FaultStats) Faults() int64 {
	return s.TransientReads + s.TransientWrites + s.TornWrites + s.CorruptReads + s.FailStops
}

// FaultDriver decorates a Driver with seeded, deterministic fault
// injection. It composes with the profiling decorator: wrapping a
// ProfiledDriver traces the I/O that torn writes and corrupt reads do
// issue, while suppressed operations (transient errors, fail-stop)
// correctly leave no trace - they never reached the device.
//
// Like the drivers it wraps, a FaultDriver is a single-session object
// and is not safe for concurrent use.
type FaultDriver struct {
	inner Driver
	plan  FaultPlan
	rng   *rand.Rand
	stats FaultStats
}

// NewFaultDriver wraps inner with the plan's faults, seeded by seed
// (derive it with DeriveSeed for per-session determinism).
func NewFaultDriver(inner Driver, plan FaultPlan, seed int64) *FaultDriver {
	return &FaultDriver{inner: inner, plan: plan, rng: rand.New(rand.NewSource(seed))}
}

// Stats returns the faults injected so far.
func (d *FaultDriver) Stats() FaultStats { return d.stats }

func (d *FaultDriver) bill() { d.stats.InjectedLatency += d.plan.Latency }

// failStop reports whether the session has passed its fail-stop horizon.
func (d *FaultDriver) failStop() bool {
	if d.plan.FailStopAfter > 0 && d.stats.Ops > d.plan.FailStopAfter {
		d.stats.FailStops++
		d.bill()
		return true
	}
	return false
}

// ReadAt implements Driver.
func (d *FaultDriver) ReadAt(p []byte, off int64, class sim.OpClass) error {
	d.stats.Ops++
	if d.failStop() {
		return fmt.Errorf("vfd: fault: read [%d,%d): %w", off, off+int64(len(p)), ErrFailStop)
	}
	if d.rng.Float64() < d.plan.ReadError.of(class) {
		d.stats.TransientReads++
		d.bill()
		return fmt.Errorf("vfd: fault: %s read [%d,%d): %w", class, off, off+int64(len(p)), ErrTransient)
	}
	if err := d.inner.ReadAt(p, off, class); err != nil {
		return err
	}
	if len(p) > 0 && d.rng.Float64() < d.plan.CorruptRead {
		d.stats.CorruptReads++
		d.bill()
		p[d.rng.Intn(len(p))] ^= byte(1 + d.rng.Intn(255))
	}
	return nil
}

// WriteAt implements Driver.
func (d *FaultDriver) WriteAt(p []byte, off int64, class sim.OpClass) error {
	d.stats.Ops++
	if d.failStop() {
		return fmt.Errorf("vfd: fault: write [%d,%d): %w", off, off+int64(len(p)), ErrFailStop)
	}
	if len(p) > 1 && d.rng.Float64() < d.plan.TornWrite {
		d.stats.TornWrites++
		d.bill()
		n := 1 + d.rng.Intn(len(p)-1)
		// The prefix lands (and is traced by an inner profiler); the
		// caller sees a failed write over torn file state.
		if err := d.inner.WriteAt(p[:n], off, class); err != nil {
			return err
		}
		return fmt.Errorf("vfd: fault: torn %s write [%d,%d) stopped at %d: %w",
			class, off, off+int64(len(p)), off+int64(n), ErrTransient)
	}
	if d.rng.Float64() < d.plan.WriteError.of(class) {
		d.stats.TransientWrites++
		d.bill()
		return fmt.Errorf("vfd: fault: %s write [%d,%d): %w", class, off, off+int64(len(p)), ErrTransient)
	}
	return d.inner.WriteAt(p, off, class)
}

// EOF implements Driver.
func (d *FaultDriver) EOF() int64 { return d.inner.EOF() }

// Truncate implements Driver. Truncation is metadata bookkeeping in this
// substrate and is not a fault target.
func (d *FaultDriver) Truncate(size int64) error { return d.inner.Truncate(size) }

// Close implements Driver.
func (d *FaultDriver) Close() error { return d.inner.Close() }

// DeriveSeed mixes a base seed with a session identity (task, file,
// attempt number, session index) into a per-session RNG seed. Sessions
// get independent but reproducible fault streams regardless of the order
// goroutines open files in, which keeps parallel fault-injected runs
// deterministic.
func DeriveSeed(base int64, task, file string, attempt, session int) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	h.Write([]byte(task))
	h.Write([]byte{0})
	h.Write([]byte(file))
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(b[:], uint64(attempt))
	h.Write(b[:])
	binary.LittleEndian.PutUint64(b[:], uint64(session))
	h.Write(b[:])
	return int64(h.Sum64())
}
