package vfd

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"dayu/internal/sim"
)

// driveOps runs a fixed op sequence against a fault driver over a fresh
// MemDriver, returning the per-op outcomes and final stats.
func driveOps(plan FaultPlan, seed int64, ops int) ([]error, FaultStats, []byte) {
	mem := NewMemDriver()
	fd := NewFaultDriver(mem, plan, seed)
	buf := make([]byte, 64)
	var errs []error
	for i := 0; i < ops; i++ {
		var err error
		if i%2 == 0 {
			err = fd.WriteAt(buf, int64(i)*64, sim.RawData)
		} else {
			err = fd.ReadAt(buf, int64(i-1)*64, sim.RawData)
		}
		errs = append(errs, err)
	}
	return errs, fd.Stats(), mem.Bytes()
}

func TestFaultDriverDeterministic(t *testing.T) {
	plan := FaultPlan{
		ReadError:   Uniform(0.2),
		WriteError:  Uniform(0.2),
		TornWrite:   0.1,
		CorruptRead: 0.1,
		Latency:     time.Millisecond,
	}
	errs1, stats1, bytes1 := driveOps(plan, 7, 200)
	errs2, stats2, bytes2 := driveOps(plan, 7, 200)
	if stats1 != stats2 {
		t.Fatalf("same seed diverged: %+v vs %+v", stats1, stats2)
	}
	if !bytes.Equal(bytes1, bytes2) {
		t.Fatal("same seed produced different file contents")
	}
	for i := range errs1 {
		if (errs1[i] == nil) != (errs2[i] == nil) {
			t.Fatalf("op %d outcome diverged: %v vs %v", i, errs1[i], errs2[i])
		}
	}
	if stats1.Faults() == 0 {
		t.Fatal("no faults injected at 20% rates over 200 ops")
	}
	if stats1.InjectedLatency != time.Duration(stats1.Faults())*time.Millisecond {
		t.Errorf("latency %v for %d faults", stats1.InjectedLatency, stats1.Faults())
	}
	// A different seed should move the faults.
	_, stats3, _ := driveOps(plan, 8, 200)
	if stats1 == stats3 {
		t.Error("different seeds produced identical fault stats")
	}
}

func TestFaultDriverTransientTyped(t *testing.T) {
	plan := FaultPlan{ReadError: Uniform(1), WriteError: Uniform(1)}
	fd := NewFaultDriver(NewMemDriver(), plan, 1)
	if err := fd.WriteAt(make([]byte, 8), 0, sim.Metadata); !errors.Is(err, ErrTransient) {
		t.Errorf("write fault not transient: %v", err)
	}
	if err := fd.ReadAt(make([]byte, 8), 0, sim.RawData); !errors.Is(err, ErrTransient) {
		t.Errorf("read fault not transient: %v", err)
	}
	if !IsRetryable(fd.ReadAt(make([]byte, 8), 0, sim.RawData)) {
		t.Error("transient fault not retryable")
	}
	// Class selectivity: metadata-only rates leave raw data alone.
	sel := NewFaultDriver(NewMemDriver(), FaultPlan{WriteError: Rate{Meta: 1}}, 1)
	if err := sel.WriteAt(make([]byte, 8), 0, sim.RawData); err != nil {
		t.Errorf("raw-data write faulted under meta-only rate: %v", err)
	}
	if err := sel.WriteAt(make([]byte, 8), 8, sim.Metadata); !errors.Is(err, ErrTransient) {
		t.Errorf("metadata write not faulted: %v", err)
	}
}

func TestFaultDriverFailStop(t *testing.T) {
	plan := FaultPlan{FailStopAfter: 3}
	mem := NewMemDriver()
	fd := NewFaultDriver(mem, plan, 1)
	buf := make([]byte, 4)
	for i := 0; i < 3; i++ {
		if err := fd.WriteAt(buf, int64(i)*4, sim.RawData); err != nil {
			t.Fatalf("op %d before horizon failed: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		err := fd.ReadAt(buf, 0, sim.RawData)
		if !errors.Is(err, ErrFailStop) {
			t.Fatalf("op after horizon not fail-stop: %v", err)
		}
		if !IsRetryable(err) {
			t.Fatal("fail-stop not retryable (reschedule)")
		}
	}
	if fd.Stats().FailStops != 5 {
		t.Errorf("fail-stops = %d", fd.Stats().FailStops)
	}
}

func TestFaultDriverTornWrite(t *testing.T) {
	plan := FaultPlan{TornWrite: 1}
	mem := NewMemDriver()
	fd := NewFaultDriver(mem, plan, 42)
	payload := bytes.Repeat([]byte{0xab}, 256)
	err := fd.WriteAt(payload, 0, sim.RawData)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("torn write error: %v", err)
	}
	got := mem.Bytes()
	if len(got) == 0 || len(got) >= len(payload) {
		t.Fatalf("torn write landed %d of %d bytes; want a strict non-empty prefix", len(got), len(payload))
	}
	for _, b := range got {
		if b != 0xab {
			t.Fatal("torn prefix holds wrong bytes")
		}
	}
	if fd.Stats().TornWrites != 1 {
		t.Errorf("torn writes = %d", fd.Stats().TornWrites)
	}
}

func TestFaultDriverCorruptRead(t *testing.T) {
	mem := NewMemDriverFrom(bytes.Repeat([]byte{0x55}, 128))
	fd := NewFaultDriver(mem, FaultPlan{CorruptRead: 1}, 3)
	buf := make([]byte, 128)
	if err := fd.ReadAt(buf, 0, sim.RawData); err != nil {
		t.Fatalf("corrupt read errored: %v", err)
	}
	flipped := 0
	for _, b := range buf {
		if b != 0x55 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Errorf("flipped bytes = %d, want 1", flipped)
	}
	// The file itself stays pristine: corruption is on the read path.
	for _, b := range mem.Bytes() {
		if b != 0x55 {
			t.Fatal("corrupt read damaged the backing store")
		}
	}
}

// TestFaultComposesWithProfiler wraps the fault layer around a profiled
// driver: torn-write partial I/O must appear in the op log (failure-path
// tracing), while fully suppressed ops must not.
func TestFaultComposesWithProfiler(t *testing.T) {
	log := &OpLog{}
	prof := NewProfiledDriver(NewMemDriver(), "f.h5", nil, log)
	fd := NewFaultDriver(prof, FaultPlan{TornWrite: 1}, 9)
	if err := fd.WriteAt(make([]byte, 100), 0, sim.RawData); !errors.Is(err, ErrTransient) {
		t.Fatalf("torn write: %v", err)
	}
	if len(log.Ops) != 1 {
		t.Fatalf("traced ops = %d, want the torn prefix", len(log.Ops))
	}
	if op := log.Ops[0]; !op.Write || op.Length <= 0 || op.Length >= 100 {
		t.Errorf("torn prefix op = %+v", op)
	}
	// A transient (suppressed) fault leaves no trace.
	fd2 := NewFaultDriver(NewProfiledDriver(NewMemDriver(), "g.h5", nil, log), FaultPlan{WriteError: Uniform(1)}, 9)
	before := len(log.Ops)
	if err := fd2.WriteAt(make([]byte, 10), 0, sim.RawData); !errors.Is(err, ErrTransient) {
		t.Fatalf("transient write: %v", err)
	}
	if len(log.Ops) != before {
		t.Error("suppressed op was traced")
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	seen := map[int64]bool{}
	for attempt := 1; attempt <= 3; attempt++ {
		for session := 1; session <= 3; session++ {
			for _, task := range []string{"a", "b"} {
				s := DeriveSeed(1, task, "f.h5", attempt, session)
				if seen[s] {
					t.Fatalf("seed collision at %s/%d/%d", task, attempt, session)
				}
				seen[s] = true
			}
		}
	}
	if DeriveSeed(1, "a", "f", 1, 1) != DeriveSeed(1, "a", "f", 1, 1) {
		t.Error("DeriveSeed not stable")
	}
	if DeriveSeed(1, "a", "f", 1, 1) == DeriveSeed(2, "a", "f", 1, 1) {
		t.Error("base seed ignored")
	}
}

func TestPlanEnabled(t *testing.T) {
	if (FaultPlan{}).Enabled() {
		t.Error("zero plan enabled")
	}
	for _, p := range []FaultPlan{
		{ReadError: Uniform(0.1)},
		{WriteError: Rate{Meta: 0.1}},
		{TornWrite: 0.1},
		{CorruptRead: 0.1},
		{FailStopAfter: 5},
	} {
		if !p.Enabled() {
			t.Errorf("plan %+v reported disabled", p)
		}
	}
}

func TestMemDriverTypedBounds(t *testing.T) {
	d := NewMemDriverFrom(make([]byte, 16))
	if err := d.ReadAt(make([]byte, 8), 12, sim.RawData); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("read past EOF: %v", err)
	}
	if err := d.ReadAt(make([]byte, 8), -1, sim.RawData); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("negative read: %v", err)
	}
	if err := d.WriteAt(make([]byte, 8), -1, sim.RawData); !errors.Is(err, ErrOutOfBounds) {
		t.Errorf("negative write: %v", err)
	}
}
