package vfd

import (
	"fmt"

	"dayu/internal/sim"
)

// MemDriver stores file contents in a growable byte slice. It backs all
// simulated executions: the format library performs real byte-level I/O
// against it while profilers record the operation stream.
type MemDriver struct {
	buf    []byte
	closed bool
}

// NewMemDriver returns an empty in-memory file.
func NewMemDriver() *MemDriver { return &MemDriver{} }

// NewMemDriverFrom returns an in-memory file initialized with contents.
// The driver takes ownership of the slice.
func NewMemDriverFrom(contents []byte) *MemDriver {
	return &MemDriver{buf: contents}
}

// Bytes exposes the current file contents (not a copy). Callers must not
// mutate it while the driver is in use.
func (d *MemDriver) Bytes() []byte { return d.buf }

// ReadAt implements Driver.
func (d *MemDriver) ReadAt(p []byte, off int64, _ sim.OpClass) error {
	if d.closed {
		return ErrClosed
	}
	if off < 0 {
		return fmt.Errorf("vfd: negative read offset %d: %w", off, ErrOutOfBounds)
	}
	end := off + int64(len(p))
	if end > int64(len(d.buf)) {
		return fmt.Errorf("vfd: read [%d,%d) beyond EOF %d: %w", off, end, len(d.buf), ErrOutOfBounds)
	}
	copy(p, d.buf[off:end])
	return nil
}

// WriteAt implements Driver.
func (d *MemDriver) WriteAt(p []byte, off int64, _ sim.OpClass) error {
	if d.closed {
		return ErrClosed
	}
	if off < 0 {
		return fmt.Errorf("vfd: negative write offset %d: %w", off, ErrOutOfBounds)
	}
	end := off + int64(len(p))
	if end > int64(len(d.buf)) {
		oldLen := int64(len(d.buf))
		if end > int64(cap(d.buf)) {
			grown := make([]byte, end, growCap(end, int64(cap(d.buf))))
			copy(grown, d.buf)
			d.buf = grown
		} else {
			d.buf = d.buf[:end]
		}
		// A write past EOF leaves a hole [oldLen, off) that must read as
		// zeros. The reslice path re-exposes whatever bytes were left in
		// cap(d.buf) by an earlier Truncate shrink, so zero the hole
		// explicitly (a no-op on the freshly-allocated grow path).
		if off > oldLen {
			zero(d.buf[oldLen:off])
		}
	}
	copy(d.buf[off:end], p)
	return nil
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

func growCap(need, have int64) int64 {
	if have == 0 {
		have = 4096
	}
	for have < need {
		have *= 2
	}
	return have
}

// EOF implements Driver.
func (d *MemDriver) EOF() int64 { return int64(len(d.buf)) }

// Truncate implements Driver.
func (d *MemDriver) Truncate(size int64) error {
	if d.closed {
		return ErrClosed
	}
	if size < 0 {
		return fmt.Errorf("vfd: negative truncate size %d", size)
	}
	if size <= int64(len(d.buf)) {
		d.buf = d.buf[:size]
		return nil
	}
	// Grow in one step. The resliced region may hold bytes from before
	// an earlier shrink, so it is zeroed; the allocation path gets a
	// zeroed buffer from make.
	oldLen := int64(len(d.buf))
	if size <= int64(cap(d.buf)) {
		d.buf = d.buf[:size]
		zero(d.buf[oldLen:])
		return nil
	}
	grown := make([]byte, size, growCap(size, int64(cap(d.buf))))
	copy(grown, d.buf)
	d.buf = grown
	return nil
}

// Close implements Driver.
func (d *MemDriver) Close() error {
	d.closed = true
	return nil
}
