package vfd

import (
	"errors"
	"time"

	"dayu/internal/obs"
	"dayu/internal/sim"
)

// InstrumentedDriver decorates a Driver with obs metrics: per-operation
// wall-clock latency and size histograms split by op kind and class
// (meta vs raw data), op/byte counters, and an error counter classified
// by the vfd fault taxonomy. It composes with the other decorators at
// the same seam - wrap it outside a FaultDriver to count injected
// faults, or outside a ProfiledDriver to time the profiler's cost along
// with the device's.
//
// All metric handles are resolved once at construction, so the per-op
// cost is two histogram observes and two counter adds - and when the
// registry is nil, Instrument returns the inner driver untouched and
// the instrumented path costs nothing at all.
type InstrumentedDriver struct {
	inner  Driver
	reg    *obs.Registry
	driver string

	readDataNS  *obs.Histogram
	readMetaNS  *obs.Histogram
	writeDataNS *obs.Histogram
	writeMetaNS *obs.Histogram
	readBytes   *obs.Histogram
	writeBytes  *obs.Histogram

	readOps    *obs.Counter
	writeOps   *obs.Counter
	readVol    *obs.Counter
	writeVol   *obs.Counter
	closeOps   *obs.Counter
	truncOps   *obs.Counter
	openFiles  *obs.Gauge
	closedOnce bool
}

// Instrument wraps inner with metric recording labeled driver=name.
// A nil registry disables instrumentation entirely: inner is returned
// unchanged so the hot path carries zero extra work.
func Instrument(inner Driver, name string, reg *obs.Registry) Driver {
	if reg == nil {
		return inner
	}
	d := &InstrumentedDriver{
		inner:  inner,
		reg:    reg,
		driver: name,

		readDataNS:  reg.Histogram(obs.Name("dayu_vfd_op_ns", "driver", name, "op", "read", "class", "data"), obs.LatencyBuckets()),
		readMetaNS:  reg.Histogram(obs.Name("dayu_vfd_op_ns", "driver", name, "op", "read", "class", "meta"), obs.LatencyBuckets()),
		writeDataNS: reg.Histogram(obs.Name("dayu_vfd_op_ns", "driver", name, "op", "write", "class", "data"), obs.LatencyBuckets()),
		writeMetaNS: reg.Histogram(obs.Name("dayu_vfd_op_ns", "driver", name, "op", "write", "class", "meta"), obs.LatencyBuckets()),
		readBytes:   reg.Histogram(obs.Name("dayu_vfd_op_bytes", "driver", name, "op", "read"), obs.SizeBuckets()),
		writeBytes:  reg.Histogram(obs.Name("dayu_vfd_op_bytes", "driver", name, "op", "write"), obs.SizeBuckets()),

		readOps:   reg.Counter(obs.Name("dayu_vfd_ops_total", "driver", name, "op", "read")),
		writeOps:  reg.Counter(obs.Name("dayu_vfd_ops_total", "driver", name, "op", "write")),
		readVol:   reg.Counter(obs.Name("dayu_vfd_bytes_total", "driver", name, "op", "read")),
		writeVol:  reg.Counter(obs.Name("dayu_vfd_bytes_total", "driver", name, "op", "write")),
		closeOps:  reg.Counter(obs.Name("dayu_vfd_ops_total", "driver", name, "op", "close")),
		truncOps:  reg.Counter(obs.Name("dayu_vfd_ops_total", "driver", name, "op", "truncate")),
		openFiles: reg.Gauge(obs.Name("dayu_vfd_open_sessions", "driver", name)),
	}
	reg.Counter(obs.Name("dayu_vfd_ops_total", "driver", name, "op", "open")).Inc()
	d.openFiles.Add(1)
	return d
}

// classify maps a driver error onto the fault-taxonomy label.
func classify(err error) string {
	switch {
	case errors.Is(err, ErrTransient):
		return "transient"
	case errors.Is(err, ErrFailStop):
		return "failstop"
	case errors.Is(err, ErrCorrupt):
		return "corrupt"
	case errors.Is(err, ErrOutOfBounds):
		return "out_of_bounds"
	case errors.Is(err, ErrClosed):
		return "closed"
	default:
		return "other"
	}
}

func (d *InstrumentedDriver) fault(op string, err error) {
	d.reg.Counter(obs.Name("dayu_vfd_errors_total",
		"driver", d.driver, "op", op, "kind", classify(err))).Inc()
}

// ReadAt implements Driver.
func (d *InstrumentedDriver) ReadAt(p []byte, off int64, class sim.OpClass) error {
	t0 := time.Now()
	err := d.inner.ReadAt(p, off, class)
	lat := time.Since(t0).Nanoseconds()
	if class == sim.Metadata {
		d.readMetaNS.Observe(lat)
	} else {
		d.readDataNS.Observe(lat)
	}
	d.readBytes.Observe(int64(len(p)))
	d.readOps.Inc()
	d.readVol.Add(int64(len(p)))
	if err != nil {
		d.fault("read", err)
	}
	return err
}

// WriteAt implements Driver.
func (d *InstrumentedDriver) WriteAt(p []byte, off int64, class sim.OpClass) error {
	t0 := time.Now()
	err := d.inner.WriteAt(p, off, class)
	lat := time.Since(t0).Nanoseconds()
	if class == sim.Metadata {
		d.writeMetaNS.Observe(lat)
	} else {
		d.writeDataNS.Observe(lat)
	}
	d.writeBytes.Observe(int64(len(p)))
	d.writeOps.Inc()
	d.writeVol.Add(int64(len(p)))
	if err != nil {
		d.fault("write", err)
	}
	return err
}

// EOF implements Driver.
func (d *InstrumentedDriver) EOF() int64 { return d.inner.EOF() }

// Truncate implements Driver.
func (d *InstrumentedDriver) Truncate(size int64) error {
	d.truncOps.Inc()
	err := d.inner.Truncate(size)
	if err != nil {
		d.fault("truncate", err)
	}
	return err
}

// Close implements Driver.
func (d *InstrumentedDriver) Close() error {
	d.closeOps.Inc()
	if !d.closedOnce {
		d.closedOnce = true
		d.openFiles.Add(-1)
	}
	err := d.inner.Close()
	if err != nil {
		d.fault("close", err)
	}
	return err
}
