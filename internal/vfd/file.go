package vfd

import (
	"fmt"
	"os"

	"dayu/internal/sim"
)

// FileDriver backs a file with the operating system's filesystem, for
// persisting traced HDF5-like files to disk (used by the CLI tools).
type FileDriver struct {
	f      *os.File
	closed bool
}

// OpenFileDriver opens or creates path for read/write access.
func OpenFileDriver(path string) (*FileDriver, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("vfd: open %s: %w", path, err)
	}
	return &FileDriver{f: f}, nil
}

// ReadAt implements Driver.
func (d *FileDriver) ReadAt(p []byte, off int64, _ sim.OpClass) error {
	if d.closed {
		return ErrClosed
	}
	if _, err := d.f.ReadAt(p, off); err != nil {
		return fmt.Errorf("vfd: read %s at %d: %w", d.f.Name(), off, err)
	}
	return nil
}

// WriteAt implements Driver.
func (d *FileDriver) WriteAt(p []byte, off int64, _ sim.OpClass) error {
	if d.closed {
		return ErrClosed
	}
	if _, err := d.f.WriteAt(p, off); err != nil {
		return fmt.Errorf("vfd: write %s at %d: %w", d.f.Name(), off, err)
	}
	return nil
}

// EOF implements Driver.
func (d *FileDriver) EOF() int64 {
	if d.closed {
		return 0
	}
	info, err := d.f.Stat()
	if err != nil {
		return 0
	}
	return info.Size()
}

// Truncate implements Driver.
func (d *FileDriver) Truncate(size int64) error {
	if d.closed {
		return ErrClosed
	}
	return d.f.Truncate(size)
}

// Close implements Driver.
func (d *FileDriver) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	return d.f.Close()
}
