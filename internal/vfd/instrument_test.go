package vfd

import (
	"testing"

	"dayu/internal/obs"
	"dayu/internal/sim"
)

func TestInstrumentNilRegistryPassThrough(t *testing.T) {
	inner := NewMemDriver()
	if got := Instrument(inner, "mem", nil); got != Driver(inner) {
		t.Error("nil registry should return the inner driver unchanged")
	}
}

func TestInstrumentedDriverMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	d := Instrument(NewMemDriver(), "mem", reg)
	buf := make([]byte, 128)
	if err := d.WriteAt(buf, 0, sim.RawData); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteAt(buf[:16], 128, sim.Metadata); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt(buf, 0, sim.RawData); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	checks := map[string]int64{
		obs.Name("dayu_vfd_ops_total", "driver", "mem", "op", "open"):    1,
		obs.Name("dayu_vfd_ops_total", "driver", "mem", "op", "write"):   2,
		obs.Name("dayu_vfd_ops_total", "driver", "mem", "op", "read"):    1,
		obs.Name("dayu_vfd_ops_total", "driver", "mem", "op", "close"):   1,
		obs.Name("dayu_vfd_bytes_total", "driver", "mem", "op", "write"): 144,
		obs.Name("dayu_vfd_bytes_total", "driver", "mem", "op", "read"):  128,
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if g := snap.Gauges[obs.Name("dayu_vfd_open_sessions", "driver", "mem")]; g != 0 {
		t.Errorf("open sessions after close = %d", g)
	}
	latName := obs.Name("dayu_vfd_op_ns", "driver", "mem", "op", "write", "class", "data")
	if snap.Histograms[latName].Count != 1 {
		t.Errorf("write data latency count = %d", snap.Histograms[latName].Count)
	}
	metaName := obs.Name("dayu_vfd_op_ns", "driver", "mem", "op", "write", "class", "meta")
	if snap.Histograms[metaName].Count != 1 {
		t.Errorf("write meta latency count = %d", snap.Histograms[metaName].Count)
	}
}

// TestInstrumentComposesWithFaultDriver wraps the instrumentation
// outside a fault driver and checks injected faults land in the
// classified error counters.
func TestInstrumentComposesWithFaultDriver(t *testing.T) {
	reg := obs.NewRegistry()
	fd := NewFaultDriver(NewMemDriver(), FaultPlan{WriteError: Uniform(1)}, 42)
	d := Instrument(fd, "mem", reg)
	err := d.WriteAt(make([]byte, 64), 0, sim.RawData)
	if err == nil {
		t.Fatal("expected injected write fault")
	}
	name := obs.Name("dayu_vfd_errors_total", "driver", "mem", "op", "write", "kind", "transient")
	if got := reg.Counter(name).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", name, got)
	}
}

func TestErrorClassification(t *testing.T) {
	cases := map[error]string{
		ErrTransient:   "transient",
		ErrFailStop:    "failstop",
		ErrCorrupt:     "corrupt",
		ErrOutOfBounds: "out_of_bounds",
		ErrClosed:      "closed",
	}
	for err, want := range cases {
		if got := classify(err); got != want {
			t.Errorf("classify(%v) = %q, want %q", err, got, want)
		}
	}
}
