// Package vfd implements the Virtual File Driver layer: the byte-address
// interface every low-level I/O operation of the HDF5-like format flows
// through. It mirrors the role of HDF5's VFD plugin API, which DaYu's
// low-level profiler hooks (paper §IV). Drivers include an in-memory
// store, an OS-file store, and a profiling decorator that records each
// operation tagged with the data-object context from the semantics
// mailbox.
package vfd

import (
	"errors"
	"time"

	"dayu/internal/sim"
)

// Error taxonomy. Every driver failure wraps one of these sentinels so
// higher layers (the workflow retry classifier, the format libraries'
// corruption detection) can branch on error kind with errors.Is instead
// of string matching.
var (
	// ErrClosed is returned by operations on a closed driver.
	ErrClosed = errors.New("vfd: driver is closed")
	// ErrOutOfBounds is returned for accesses outside the file's valid
	// address range (reads beyond EOF, negative offsets). During format
	// parsing it usually means the file structure points outside the
	// file, i.e. truncation or corruption.
	ErrOutOfBounds = errors.New("vfd: access outside file bounds")
	// ErrTransient marks a fault that may not recur: a retried operation
	// (or a retried task attempt) can succeed.
	ErrTransient = errors.New("vfd: transient I/O fault")
	// ErrFailStop marks a device or node that has stopped serving I/O
	// entirely; retrying on the same instance is futile, but rescheduling
	// the work elsewhere can succeed.
	ErrFailStop = errors.New("vfd: device failed (fail-stop)")
	// ErrCorrupt marks data that is structurally invalid: torn writes,
	// bit flips, or files whose metadata cannot be parsed.
	ErrCorrupt = errors.New("vfd: corrupt data")
)

// IsRetryable reports whether the failure class can be cured by running
// the operation again, possibly on a different node: transient faults
// and fail-stop instances qualify, corruption and usage errors do not.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrTransient) || errors.Is(err, ErrFailStop)
}

// Driver is the low-level file access interface. Offsets are absolute
// byte addresses within the file; Class tags each operation as metadata
// or raw data (Table II, parameter 6).
type Driver interface {
	// ReadAt reads len(p) bytes at offset off. Short reads return an error.
	ReadAt(p []byte, off int64, class sim.OpClass) error
	// WriteAt writes len(p) bytes at offset off, extending the file as
	// needed.
	WriteAt(p []byte, off int64, class sim.OpClass) error
	// EOF reports the current end-of-file address.
	EOF() int64
	// Truncate sets the file size.
	Truncate(size int64) error
	// Close releases the driver. Further operations fail with ErrClosed.
	Close() error
}

// Op is one recorded low-level I/O operation.
type Op struct {
	// Seq is the operation's sequence number within its recorder.
	Seq int64
	// Wall is the wall-clock time the operation started (for overhead
	// analysis and time ordering).
	Wall time.Time
	// Offset and Length delimit the accessed file region.
	Offset int64
	Length int64
	// Write is true for writes, false for reads.
	Write bool
	// Class distinguishes metadata from raw-data traffic.
	Class sim.OpClass
	// Object, File and Task are the semantic context stamped by the
	// object layer through the mailbox; Object may be empty for I/O
	// issued outside any object access (e.g. superblock flushes).
	Object string
	File   string
	Task   string
}

// End returns the exclusive end address of the accessed region.
func (o Op) End() int64 { return o.Offset + o.Length }

// SimOp converts the record to a sim.Op for cost replay.
func (o Op) SimOp() sim.Op {
	return sim.Op{Class: o.Class, Bytes: o.Length, Write: o.Write}
}

// Observer receives each operation as it completes. Implementations must
// be cheap: they run on the I/O path (this is where DaYu's runtime
// overhead comes from, measured in Figure 9).
type Observer interface {
	Observe(op Op)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(op Op)

// Observe implements Observer.
func (f ObserverFunc) Observe(op Op) { f(op) }
