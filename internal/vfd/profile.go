package vfd

import (
	"time"

	"dayu/internal/semantics"
	"dayu/internal/sim"
)

// ProfiledDriver decorates a Driver, recording every operation to an
// Observer with the semantic context read from the mailbox. This is the
// interposition point of DaYu's VFD profiler: it sees byte addresses and
// op classes but learns object names only through the mailbox, exactly
// like the paper's shared-memory channel.
type ProfiledDriver struct {
	inner    Driver
	mailbox  *semantics.Mailbox
	observer Observer
	fileName string
	seq      int64
	// now allows tests and the virtual-time harness to control
	// timestamps; defaults to time.Now.
	now func() time.Time
}

// NewProfiledDriver wraps inner. fileName labels all recorded ops;
// mailbox supplies object context (may be nil for unattributed tracing);
// observer receives each op (must be non-nil).
func NewProfiledDriver(inner Driver, fileName string, mailbox *semantics.Mailbox, observer Observer) *ProfiledDriver {
	if observer == nil {
		panic("vfd: NewProfiledDriver with nil observer")
	}
	return &ProfiledDriver{
		inner:    inner,
		mailbox:  mailbox,
		observer: observer,
		fileName: fileName,
		now:      time.Now,
	}
}

// SetTimeSource overrides the wall-clock source (used in tests).
func (d *ProfiledDriver) SetTimeSource(now func() time.Time) { d.now = now }

func (d *ProfiledDriver) record(off, length int64, write bool, class sim.OpClass) {
	op := Op{
		Seq:    d.seq,
		Wall:   d.now(),
		Offset: off,
		Length: length,
		Write:  write,
		Class:  class,
		File:   d.fileName,
	}
	d.seq++
	if d.mailbox != nil {
		ctx := d.mailbox.Current()
		op.Object = ctx.Object
		op.Task = ctx.Task
	}
	d.observer.Observe(op)
}

// ReadAt implements Driver.
func (d *ProfiledDriver) ReadAt(p []byte, off int64, class sim.OpClass) error {
	if err := d.inner.ReadAt(p, off, class); err != nil {
		return err
	}
	d.record(off, int64(len(p)), false, class)
	return nil
}

// WriteAt implements Driver.
func (d *ProfiledDriver) WriteAt(p []byte, off int64, class sim.OpClass) error {
	if err := d.inner.WriteAt(p, off, class); err != nil {
		return err
	}
	d.record(off, int64(len(p)), true, class)
	return nil
}

// EOF implements Driver.
func (d *ProfiledDriver) EOF() int64 { return d.inner.EOF() }

// Truncate implements Driver.
func (d *ProfiledDriver) Truncate(size int64) error { return d.inner.Truncate(size) }

// Close implements Driver.
func (d *ProfiledDriver) Close() error { return d.inner.Close() }

// OpLog is an Observer that retains every operation in memory. The
// workflow harness uses it to hand complete op streams to the analyzer
// and to the device-model replay.
type OpLog struct {
	Ops []Op
}

// Observe implements Observer.
func (l *OpLog) Observe(op Op) { l.Ops = append(l.Ops, op) }

// SimOps converts the log to sim ops for cost replay.
func (l *OpLog) SimOps() []sim.Op {
	out := make([]sim.Op, len(l.Ops))
	for i, op := range l.Ops {
		out[i] = op.SimOp()
	}
	return out
}

// Reset clears the log for reuse.
func (l *OpLog) Reset() { l.Ops = l.Ops[:0] }
