package analyzer

import (
	"fmt"
	"sort"
	"strings"

	"dayu/internal/trace"
)

// Dependency chains (paper contribution 1: "complete data dependence
// chains for all I/O accesses"): the alternating task → file → task …
// paths a datum travels through the workflow, with the volume carried
// at each hop.

// ChainHop is one producer-file-consumer step.
type ChainHop struct {
	Producer string
	File     string
	Consumer string
	// Bytes is the volume the consumer read from the file.
	Bytes int64
}

// Chain is one maximal dependence path through the workflow.
type Chain struct {
	Hops []ChainHop
}

// String renders the chain as "t1 -[f1]-> t2 -[f2]-> t3".
func (c Chain) String() string {
	if len(c.Hops) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString(c.Hops[0].Producer)
	for _, h := range c.Hops {
		fmt.Fprintf(&b, " -[%s]-> %s", h.File, h.Consumer)
	}
	return b.String()
}

// Len returns the hop count.
func (c Chain) Len() int { return len(c.Hops) }

// DependencyChains extracts every maximal producer→consumer chain from
// the traces. A hop exists when a task wrote data content to a file and
// a later task read content from it. Chains start at tasks with no
// data-producing predecessor hop and are extended greedily; cycles
// (write-after-read updates) terminate a chain rather than looping.
func DependencyChains(traces []*trace.TaskTrace, m *trace.Manifest) []Chain {
	ordered := OrderTasks(traces, m)
	taskIdx := map[string]int{}
	for i, t := range ordered {
		taskIdx[t.Task] = i
	}

	// Build hop edges.
	type writer struct {
		task string
		idx  int
	}
	firstWriter := map[string]writer{}
	for i, t := range ordered {
		for _, fr := range t.Files {
			if fr.DataWrites > 0 {
				if _, ok := firstWriter[fr.File]; !ok {
					firstWriter[fr.File] = writer{task: t.Task, idx: i}
				}
			}
		}
	}
	hopsFrom := map[string][]ChainHop{}
	hasIncoming := map[string]bool{}
	for i, t := range ordered {
		for _, fr := range t.Files {
			if fr.DataReads == 0 {
				continue
			}
			w, ok := firstWriter[fr.File]
			if !ok || w.idx >= i {
				continue // pure input or self/future write
			}
			hop := ChainHop{Producer: w.task, File: fr.File, Consumer: t.Task, Bytes: fr.BytesRead}
			hopsFrom[w.task] = append(hopsFrom[w.task], hop)
			hasIncoming[t.Task] = true
		}
	}
	for task := range hopsFrom {
		sort.Slice(hopsFrom[task], func(a, b int) bool {
			ha, hb := hopsFrom[task][a], hopsFrom[task][b]
			if ha.File != hb.File {
				return ha.File < hb.File
			}
			return ha.Consumer < hb.Consumer
		})
	}

	// Depth-first expansion from root producers.
	var chains []Chain
	var walk func(task string, path []ChainHop, seen map[string]bool)
	walk = func(task string, path []ChainHop, seen map[string]bool) {
		next := hopsFrom[task]
		extended := false
		for _, hop := range next {
			if seen[hop.Consumer] {
				continue
			}
			seen[hop.Consumer] = true
			walk(hop.Consumer, append(path, hop), seen)
			delete(seen, hop.Consumer)
			extended = true
		}
		if !extended && len(path) > 0 {
			chains = append(chains, Chain{Hops: append([]ChainHop(nil), path...)})
		}
	}
	var roots []string
	for task := range hopsFrom {
		if !hasIncoming[task] {
			roots = append(roots, task)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return taskIdx[roots[i]] < taskIdx[roots[j]] })
	for _, root := range roots {
		walk(root, nil, map[string]bool{root: true})
	}
	return chains
}

// LongestChain returns the chain with the most hops (ties broken by
// carried volume), or an empty chain when no dependencies exist.
func LongestChain(chains []Chain) Chain {
	var best Chain
	var bestBytes int64
	for _, c := range chains {
		var bytes int64
		for _, h := range c.Hops {
			bytes += h.Bytes
		}
		if c.Len() > best.Len() || (c.Len() == best.Len() && bytes > bestBytes) {
			best = c
			bestBytes = bytes
		}
	}
	return best
}
