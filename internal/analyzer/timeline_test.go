package analyzer

import (
	"errors"
	"strings"
	"testing"

	"dayu/internal/graph"
	"dayu/internal/trace"
)

func timelineTraces() []*trace.TaskTrace {
	return []*trace.TaskTrace{
		{
			Task: "producer", StartNS: 1000, EndNS: 2000,
			Files: []trace.FileRecord{{Task: "producer", File: "a.h5",
				OpenNS: 1100, CloseNS: 1900, BytesWritten: 4096, Writes: 1, DataOps: 1, Ops: 1}},
		},
		{
			Task: "consumer", StartNS: 2000, EndNS: 4000,
			Files: []trace.FileRecord{
				{Task: "consumer", File: "a.h5", OpenNS: 2100, CloseNS: 2500,
					BytesRead: 4096, Reads: 1, DataOps: 1, Ops: 1},
				{Task: "consumer", File: "b.h5", OpenNS: 2600, CloseNS: 3900,
					BytesWritten: 1024, Writes: 1, DataOps: 1, Ops: 1},
			},
		},
	}
}

func TestBuildTimeline(t *testing.T) {
	tl := BuildTimeline(timelineTraces(), nil)
	if tl.Start != 1000 || tl.End != 4000 {
		t.Fatalf("bounds = [%d,%d]", tl.Start, tl.End)
	}
	if tl.Duration() != 3000 {
		t.Fatal("duration wrong")
	}
	if len(tl.Tasks) != 2 {
		t.Fatalf("tasks = %d", len(tl.Tasks))
	}
	if tl.Tasks[0].Name != "producer" || tl.Tasks[1].Name != "consumer" {
		t.Errorf("order: %s %s", tl.Tasks[0].Name, tl.Tasks[1].Name)
	}
	c := tl.Tasks[1]
	if len(c.Files) != 2 || c.Files[0].Name != "a.h5" || c.Files[1].Name != "b.h5" {
		t.Fatalf("consumer files = %+v", c.Files)
	}
	if c.Files[0].Bytes != 4096 {
		t.Error("file volume lost")
	}
}

func TestTimelineText(t *testing.T) {
	tl := BuildTimeline(timelineTraces(), nil)
	txt := tl.Text(60)
	if !strings.Contains(txt, "producer") || !strings.Contains(txt, "consumer") {
		t.Fatal("task names missing")
	}
	if !strings.Contains(txt, "=") || !strings.Contains(txt, ".") {
		t.Fatal("bars missing")
	}
	// The producer's bar ends before the consumer's begins (left to
	// right ordering by time).
	lines := strings.Split(txt, "\n")
	var prodLine, consLine string
	for _, l := range lines {
		if strings.HasPrefix(l, "producer") {
			prodLine = l
		}
		if strings.HasPrefix(l, "consumer") {
			consLine = l
		}
	}
	if strings.LastIndex(prodLine, "=") > strings.Index(consLine, "=")+1 {
		t.Error("timeline bars overlap incorrectly")
	}
	// Degenerate inputs don't panic.
	empty := BuildTimeline(nil, nil)
	if empty.Text(0) == "" {
		t.Error("empty timeline text empty")
	}
}

func TestTimelineHTML(t *testing.T) {
	tl := BuildTimeline(timelineTraces(), nil)
	h := tl.HTML()
	for _, want := range []string{"<!DOCTYPE html>", "bar task", "bar file", "a.h5", "4.0 KiB"} {
		if !strings.Contains(h, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	// Escaping.
	traces := timelineTraces()
	traces[0].Task = "<script>"
	traces[0].Files[0].Task = "<script>"
	h2 := BuildTimeline(traces, nil).HTML()
	if strings.Contains(h2, "<script>") {
		t.Error("HTML injection not escaped")
	}
}

func TestAggregateByTime(t *testing.T) {
	g := BuildFTG(timelineTraces(), nil)
	// Window of 5000ns: both tasks (starts 1000 and 2000) share window 0.
	agg, err := AggregateByTime(g, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(agg.NodesOfKind("stage")); n != 1 {
		t.Fatalf("windows = %d", n)
	}
	if len(agg.NodesOfKind("task")) != 0 {
		t.Error("task nodes survived time aggregation")
	}
	// Window of 500ns separates them.
	agg2, err := AggregateByTime(g, 500)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(agg2.NodesOfKind("stage")); n != 2 {
		t.Fatalf("separated windows = %d", n)
	}
	// Edges re-targeted, volumes preserved.
	if agg.TotalVolume() != g.TotalVolume() {
		t.Error("volume lost in aggregation")
	}
}

// Regression: a zero or negative window used to silently return the
// input graph, so callers that truncated a duration to 0ns served an
// unaggregated graph as a windowed one. It must now fail with the
// typed error.
func TestAggregateByTimeRejectsNonPositiveWindow(t *testing.T) {
	g := BuildFTG(timelineTraces(), nil)
	for _, w := range []int64{0, -1, -5000} {
		agg, err := AggregateByTime(g, w)
		if !errors.Is(err, ErrNonPositiveWindow) {
			t.Errorf("window %d: err = %v, want ErrNonPositiveWindow", w, err)
		}
		if agg != nil {
			t.Errorf("window %d: got a graph alongside the error", w)
		}
	}
}

func TestAggregateByTimePreservesStageNodes(t *testing.T) {
	// A graph that already went through AggregateByStage carries stage
	// nodes whose IDs lack the "window:" prefix. The label fix-up used to
	// rewrite every KindStage node, mangling those labels (or panicking on
	// IDs shorter than the prefix, like this one-character stage ID).
	g := graph.New("mixed")
	g.AddNode(graph.Node{ID: "s", Kind: graph.KindStage, Label: "setup"})
	g.AddNode(graph.Node{ID: "stage:consume", Kind: graph.KindStage, Label: "consume"})
	g.AddNode(graph.Node{ID: "task:late", Kind: graph.KindTask, Label: "late", StartNS: 9000, EndNS: 9500})
	g.AddNode(graph.Node{ID: "file:a.h5", Kind: graph.KindFile, Label: "a.h5"})
	if _, err := g.AddEdge(graph.Edge{From: "task:late", To: "file:a.h5", Op: graph.OpWrite, Volume: 64}); err != nil {
		t.Fatal(err)
	}

	agg, err := AggregateByTime(g, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if n := agg.Node("s"); n == nil || n.Label != "setup" {
		t.Errorf("pre-existing stage node mangled: %+v", n)
	}
	if n := agg.Node("stage:consume"); n == nil || n.Label != "consume" {
		t.Errorf("pre-existing stage node mangled: %+v", n)
	}
	if n := agg.Node("window:0"); n == nil || !strings.Contains(n.Label, "1 tasks") {
		t.Errorf("window node label wrong: %+v", n)
	}
	if agg.Node("task:late") != nil {
		t.Error("task node survived time aggregation")
	}
}
