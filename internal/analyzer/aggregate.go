package analyzer

import (
	"errors"
	"fmt"

	"dayu/internal/graph"
	"dayu/internal/trace"
)

// Resolution adjustment (paper §V "Adjusting Resolution"): when SDGs
// grow complex, nodes can be grouped along task, space or time
// dimensions to keep graphs readable.

// AggregateByStage merges every task node belonging to a manifest stage
// into one stage node, re-targeting edges and summing their statistics.
// The input graph is returned unchanged when there is nothing to do.
func AggregateByStage(g *graph.Graph, m *trace.Manifest) (*graph.Graph, error) {
	if m == nil || len(m.Stages) == 0 {
		return g, nil
	}
	taskStage := map[string]string{}
	for stage, tasks := range m.Stages {
		for _, t := range tasks {
			taskStage[taskNodeID(t)] = "stage:" + stage
		}
	}
	remap := func(id string) string {
		if s, ok := taskStage[id]; ok {
			return s
		}
		return id
	}

	out := graph.New(g.Name + " (by stage)")
	for _, n := range g.Nodes() {
		if s, ok := taskStage[n.ID]; ok {
			out.AddNode(graph.Node{
				ID: s, Kind: graph.KindStage, Label: s[len("stage:"):],
				StartNS: n.StartNS, EndNS: n.EndNS, Volume: n.Volume,
			})
			continue
		}
		out.AddNode(*n)
	}
	type edgeKey struct {
		from, to string
		op       graph.EdgeOp
	}
	merged := map[edgeKey]*graph.Edge{}
	var order []edgeKey
	for _, e := range g.Edges() {
		k := edgeKey{remap(e.From), remap(e.To), e.Op}
		if k.from == k.to && e.Op == graph.OpMap {
			continue
		}
		if ex, ok := merged[k]; ok {
			ex.Volume += e.Volume
			ex.Ops += e.Ops
			ex.MetaOps += e.MetaOps
			ex.DataOps += e.DataOps
			if e.Bandwidth > ex.Bandwidth {
				ex.Bandwidth = e.Bandwidth
			}
			ex.Reused = ex.Reused || e.Reused
			continue
		}
		cp := *e
		cp.From, cp.To = k.from, k.to
		merged[k] = &cp
		order = append(order, k)
	}
	for _, k := range order {
		if _, err := out.AddEdge(*merged[k]); err != nil {
			return nil, fmt.Errorf("analyzer: aggregate by stage: %w", err)
		}
	}
	return out, nil
}

// CollapseDatasets replaces the dataset nodes of any file having more
// than maxPerFile with a single aggregated node per file, preserving
// total statistics. This is the space-dimension grouping for files with
// very many small datasets (like PyFLEXTRKR stage 9).
// The input graph is returned unchanged when no file crosses the limit.
func CollapseDatasets(g *graph.Graph, maxPerFile int) (*graph.Graph, error) {
	// Count dataset nodes per file via their map edges.
	fileOf := map[string]string{}
	perFile := map[string][]string{}
	for _, e := range g.Edges() {
		if e.Op != graph.OpMap {
			continue
		}
		from, to := g.Node(e.From), g.Node(e.To)
		if from == nil || to == nil {
			continue
		}
		if from.Kind == graph.KindDataset && to.Kind == graph.KindFile {
			if fileOf[from.ID] == "" {
				fileOf[from.ID] = to.ID
				perFile[to.ID] = append(perFile[to.ID], from.ID)
			}
		}
	}
	collapse := map[string]string{} // dataset node -> aggregate node
	for fileID, dsets := range perFile {
		if len(dsets) <= maxPerFile {
			continue
		}
		aggID := "dataset:" + fileID + "::<aggregated>"
		for _, d := range dsets {
			collapse[d] = aggID
		}
	}
	if len(collapse) == 0 {
		return g, nil
	}

	counts := map[string]int{}
	for _, agg := range collapse {
		counts[agg]++
	}
	out := graph.New(g.Name + " (datasets collapsed)")
	for _, n := range g.Nodes() {
		if agg, ok := collapse[n.ID]; ok {
			out.AddNode(graph.Node{
				ID: agg, Kind: graph.KindDataset,
				Label:   fmt.Sprintf("%d datasets", counts[agg]),
				StartNS: n.StartNS, EndNS: n.EndNS, Volume: n.Volume,
			})
			continue
		}
		out.AddNode(*n)
	}
	remap := func(id string) string {
		if a, ok := collapse[id]; ok {
			return a
		}
		return id
	}
	type edgeKey struct {
		from, to string
		op       graph.EdgeOp
	}
	merged := map[edgeKey]*graph.Edge{}
	var order []edgeKey
	for _, e := range g.Edges() {
		k := edgeKey{remap(e.From), remap(e.To), e.Op}
		if ex, ok := merged[k]; ok {
			ex.Volume += e.Volume
			ex.Ops += e.Ops
			ex.MetaOps += e.MetaOps
			ex.DataOps += e.DataOps
			ex.Reused = ex.Reused || e.Reused
			continue
		}
		cp := *e
		cp.From, cp.To = k.from, k.to
		merged[k] = &cp
		order = append(order, k)
	}
	for _, k := range order {
		if _, err := out.AddEdge(*merged[k]); err != nil {
			return nil, fmt.Errorf("analyzer: collapse datasets: %w", err)
		}
	}
	return out, nil
}

// ErrNonPositiveWindow is returned by AggregateByTime for a window of
// zero or negative width. The old behaviour — silently returning the
// input graph — let a caller that computed a bad window (for example a
// duration truncated to 0ns) present an unaggregated graph as a
// windowed one.
var ErrNonPositiveWindow = errors.New("analyzer: time window must be positive")

// AggregateByTime merges task nodes whose activity starts within the
// same window (the paper's time-dimension grouping): tasks launched in
// the same window collapse into one "window" node. Non-task nodes -
// including stage nodes from a prior AggregateByStage pass - are
// untouched. windowNS must be positive; anything else is
// ErrNonPositiveWindow. Callers that want pass-through for "no window"
// must decide that explicitly before calling.
func AggregateByTime(g *graph.Graph, windowNS int64) (*graph.Graph, error) {
	if windowNS <= 0 {
		return nil, fmt.Errorf("%w: %dns", ErrNonPositiveWindow, windowNS)
	}
	var minStart int64
	for _, n := range g.NodesOfKind(graph.KindTask) {
		if minStart == 0 || (n.StartNS != 0 && n.StartNS < minStart) {
			minStart = n.StartNS
		}
	}
	remap := map[string]string{}
	for _, n := range g.NodesOfKind(graph.KindTask) {
		w := (n.StartNS - minStart) / windowNS
		remap[n.ID] = fmt.Sprintf("window:%d", w)
	}
	out := graph.New(g.Name + " (by time)")
	counts := map[string]int{}
	for _, n := range g.Nodes() {
		if w, ok := remap[n.ID]; ok {
			counts[w]++
			out.AddNode(graph.Node{
				ID: w, Kind: graph.KindStage,
				Label:   fmt.Sprintf("%s (%d tasks)", w[len("window:"):], counts[w]),
				StartNS: n.StartNS, EndNS: n.EndNS, Volume: n.Volume,
			})
			continue
		}
		out.AddNode(*n)
	}
	// Window labels show final task counts. Only nodes this pass created
	// are rewritten: pre-existing stage nodes (e.g. from AggregateByStage)
	// share KindStage but are not windows - slicing their IDs would mangle
	// labels or panic on IDs shorter than the "window:" prefix.
	for id, n := range counts {
		if w := out.Node(id); w != nil {
			w.Label = fmt.Sprintf("t+%s: %d tasks", id[len("window:"):], n)
		}
	}
	type edgeKey struct {
		from, to string
		op       graph.EdgeOp
	}
	merged := map[edgeKey]*graph.Edge{}
	var order []edgeKey
	mapID := func(id string) string {
		if w, ok := remap[id]; ok {
			return w
		}
		return id
	}
	for _, e := range g.Edges() {
		k := edgeKey{mapID(e.From), mapID(e.To), e.Op}
		if ex, ok := merged[k]; ok {
			ex.Volume += e.Volume
			ex.Ops += e.Ops
			ex.MetaOps += e.MetaOps
			ex.DataOps += e.DataOps
			ex.Reused = ex.Reused || e.Reused
			continue
		}
		cp := *e
		cp.From, cp.To = k.from, k.to
		merged[k] = &cp
		order = append(order, k)
	}
	for _, k := range order {
		if _, err := out.AddEdge(*merged[k]); err != nil {
			return nil, fmt.Errorf("analyzer: aggregate by time: %w", err)
		}
	}
	return out, nil
}

// Stats summarizes a graph for reports.
type Stats struct {
	Tasks    int
	Files    int
	Datasets int
	Regions  int
	Edges    int
	Volume   int64
}

// Summarize computes graph statistics.
func Summarize(g *graph.Graph) Stats {
	return Stats{
		Tasks:    len(g.NodesOfKind(graph.KindTask)) + len(g.NodesOfKind(graph.KindStage)),
		Files:    len(g.NodesOfKind(graph.KindFile)),
		Datasets: len(g.NodesOfKind(graph.KindDataset)),
		Regions:  len(g.NodesOfKind(graph.KindRegion)),
		Edges:    g.NumEdges(),
		Volume:   g.TotalVolume(),
	}
}
