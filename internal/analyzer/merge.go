package analyzer

// Parallel graph assembly: worker-owned contribution arenas and the
// shard-then-stitch merge.
//
// PR 3 parallelized per-task contribution *compute* but still paid a
// goroutine/channel round-trip per task and folded every contribution
// into the graph serially; on the 3000-task synthetic workflow that
// made the "parallel" build slower than the serial one (BENCH_5:
// 0.91x). This file wins the path back in three moves:
//
//  1. Contributions are built in contiguous chunks claimed off an
//     atomic counter — one atomic op per chunk instead of a channel
//     send per task — into worker-owned arenas (pooled node/edge
//     backing arrays), so a task's contribution is two slice headers
//     into the arena rather than two fresh allocations.
//  2. The merge shards by node key: occurrence shards are assigned in
//     parallel, then one worker per shard folds every occurrence of
//     its nodes — in global occurrence order, so the fold sequence per
//     node is exactly the serial AddNode sequence — and builds the
//     adjacency index entries for its keys. Edge clones land in one
//     shared array at their global positions.
//  3. The stitch is the only serial part: per-shard first-occurrence
//     lists are merged back into global insertion order (positions are
//     unique integers, so the order is total and deterministic) and
//     the assembled state is handed to graph.InstallBulk in O(nodes).
//
// Determinism argument: every output the serial merge produces is a
// function of (a) node first-occurrence order, (b) the per-node fold
// sequence, (c) global edge order, and (d) per-endpoint adjacency
// order. All four are derived here from the global occurrence index —
// a schedule-independent quantity — so any shard count, including the
// serial path, yields byte-identical renderings. The equivalence gate
// in BENCH_*.json and the property tests in parallel_test.go hold this
// to account.

import (
	"sort"
	"sync"
	"sync/atomic"

	"dayu/internal/graph"
	"dayu/internal/trace"
)

// contribArena is a worker-owned backing store for contribution node
// and edge slices. Arenas are pooled: a build borrows one per worker,
// hands out sub-slices of its arrays as contributions, and returns it
// once the graph has copied everything out.
type contribArena struct {
	nodes []graph.Node
	edges []graph.Edge
}

var arenaPool = sync.Pool{New: func() any { return new(contribArena) }}

// maxPooledArenaCap bounds the entry capacity an arena may keep when
// returned to the pool, so one huge build does not pin its peak
// footprint forever.
const maxPooledArenaCap = 1 << 16

func getArena() *contribArena { return arenaPool.Get().(*contribArena) }

// putArena clears the arena (dropping attr-map references held by
// stale entries) and pools it for reuse. Callers must guarantee no
// Contribution handed out by this arena is referenced afterwards.
func putArena(a *contribArena) {
	if cap(a.nodes) > maxPooledArenaCap || cap(a.edges) > maxPooledArenaCap {
		return
	}
	a.nodes = a.nodes[:cap(a.nodes)]
	clear(a.nodes)
	a.nodes = a.nodes[:0]
	a.edges = a.edges[:cap(a.edges)]
	clear(a.edges)
	a.edges = a.edges[:0]
	arenaPool.Put(a)
}

func releaseArenas(arenas []*contribArena) {
	for _, a := range arenas {
		putArena(a)
	}
}

// contribution builds one task's contribution into the arena and
// returns a capacity-capped window onto the arena's arrays. Growth is
// adopted back into the arena, so consecutive contributions pack into
// the same backing store.
func (a *contribArena) contribution(t *trace.TaskTrace, build func(*trace.TaskTrace, *Contribution)) Contribution {
	c := Contribution{nodes: a.nodes, edges: a.edges}
	nlo, elo := len(a.nodes), len(a.edges)
	build(t, &c)
	a.nodes, a.edges = c.nodes, c.edges
	return Contribution{
		nodes: c.nodes[nlo:len(c.nodes):len(c.nodes)],
		edges: c.edges[elo:len(c.edges):len(c.edges)],
	}
}

// contributionChunk sizes the work chunks contribution workers claim:
// small enough to balance uneven tasks, large enough that the atomic
// claim is noise.
func contributionChunk(n, workers int) int {
	c := n / (workers * 8)
	if c < 1 {
		return 1
	}
	if c > 256 {
		return 256
	}
	return c
}

// buildContributions computes per-task contributions for the ordered
// traces into pooled arenas and returns them in task order together
// with the arenas backing them. The caller must releaseArenas once the
// contributions are dead (merged into a graph).
func buildContributions(ordered []*trace.TaskTrace, parallelism int, build func(*trace.TaskTrace, *Contribution)) ([]Contribution, []*contribArena) {
	out := make([]Contribution, len(ordered))
	if parallelism > len(ordered) {
		parallelism = len(ordered)
	}
	if parallelism <= 1 {
		a := getArena()
		for i, t := range ordered {
			out[i] = a.contribution(t, build)
		}
		return out, []*contribArena{a}
	}
	arenas := make([]*contribArena, parallelism)
	chunk := contributionChunk(len(ordered), parallelism)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		arenas[w] = getArena()
		wg.Add(1)
		go func(a *contribArena) {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= len(ordered) {
					return
				}
				hi := lo + chunk
				if hi > len(ordered) {
					hi = len(ordered)
				}
				for i := lo; i < hi; i++ {
					out[i] = a.contribution(ordered[i], build)
				}
			}
		}(arenas[w])
	}
	wg.Wait()
	return out, arenas
}

// serialMerge folds contributions into the graph in task order — the
// same sequence of AddNode/AddEdge calls a fully serial build performs.
// It is the reference the sharded merge must match byte-for-byte, and
// the path taken when parallelism or input size makes sharding not
// worth it.
func serialMerge(g *graph.Graph, contribs []Contribution) {
	for i := range contribs {
		for _, n := range contribs[i].nodes {
			g.AddNode(n)
		}
		for _, e := range contribs[i].edges {
			mustAdd(g, e)
		}
	}
}

// parallelMergeMinOccurrences gates the sharded merge: below this many
// node+edge occurrences the fan-out costs more than it saves.
const parallelMergeMinOccurrences = 4096

// maxMergeShards bounds the shard count (shard assignments are stored
// as bytes; contention past a few dozen shards is all stitch anyway).
const maxMergeShards = 64

// mergeContributions folds contributions into the empty graph g,
// sharding across min(parallelism, maxMergeShards) workers when the
// input is large enough. Output bytes are identical at every setting.
func mergeContributions(g *graph.Graph, contribs []Contribution, parallelism int) {
	var nodeOccs, edgeCount int
	for i := range contribs {
		nodeOccs += len(contribs[i].nodes)
		edgeCount += len(contribs[i].edges)
	}
	if parallelism <= 1 || nodeOccs+edgeCount < parallelMergeMinOccurrences {
		serialMerge(g, contribs)
		return
	}
	shards := parallelism
	if shards > maxMergeShards {
		shards = maxMergeShards
	}
	shardMerge(g, contribs, shards, nodeOccs, edgeCount)
}

// shardOf assigns a node key to a shard by FNV-1a hash. The assignment
// only affects work distribution, never output: all occurrences of a
// key land in one shard, and stitching is position-ordered.
func shardOf(id string, shards int) uint8 {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= prime32
	}
	return uint8(h % uint32(shards))
}

// nodeAt pins a folded node to the global occurrence position of its
// first appearance — the serial build's insertion position.
type nodeAt struct {
	pos  int
	node *graph.Node
}

// shardState is one shard worker's output: its keys' folded nodes in
// first-occurrence order and the adjacency index entries for its keys.
type shardState struct {
	nodes []nodeAt
	out   map[string][]*graph.Edge
	in    map[string][]*graph.Edge
}

func shardMerge(g *graph.Graph, contribs []Contribution, shards, nodeOccs, edgeCount int) {
	// Global occurrence positions: prefix sums over contribution sizes.
	nodeBase := make([]int, len(contribs)+1)
	edgeBase := make([]int, len(contribs)+1)
	for i := range contribs {
		nodeBase[i+1] = nodeBase[i] + len(contribs[i].nodes)
		edgeBase[i+1] = edgeBase[i] + len(contribs[i].edges)
	}

	nodeShard := make([]uint8, nodeOccs)
	edgeVals := make([]graph.Edge, edgeCount)
	edgePtrs := make([]*graph.Edge, edgeCount)
	edgeFromShard := make([]uint8, edgeCount)
	edgeToShard := make([]uint8, edgeCount)

	// Phase 1 — parallel over contribution chunks: hash every node key
	// once, and clone every edge (attrs included, matching AddEdge)
	// into its global slot.
	chunk := contributionChunk(len(contribs), shards)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= len(contribs) {
					return
				}
				hi := lo + chunk
				if hi > len(contribs) {
					hi = len(contribs)
				}
				for ci := lo; ci < hi; ci++ {
					c := &contribs[ci]
					nb, eb := nodeBase[ci], edgeBase[ci]
					for ni := range c.nodes {
						nodeShard[nb+ni] = shardOf(c.nodes[ni].ID, shards)
					}
					for ei := range c.edges {
						e := &c.edges[ei]
						pos := eb + ei
						cp := *e
						if e.Attrs != nil {
							m := make(map[string]string, len(e.Attrs))
							for k, v := range e.Attrs {
								m[k] = v
							}
							cp.Attrs = m
						}
						edgeVals[pos] = cp
						edgePtrs[pos] = &edgeVals[pos]
						edgeFromShard[pos] = shardOf(e.From, shards)
						edgeToShard[pos] = shardOf(e.To, shards)
					}
				}
			}
		}()
	}
	wg.Wait()

	// Phase 2 — one worker per shard: fold node occurrences of this
	// shard's keys in global order (exactly the serial AddNode merge
	// sequence per node) and build the adjacency slices for its keys,
	// again in global edge order.
	states := make([]shardState, shards)
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			st := &states[s]
			byID := make(map[string]*graph.Node)
			for ci := range contribs {
				c := &contribs[ci]
				nb := nodeBase[ci]
				for ni := range c.nodes {
					if nodeShard[nb+ni] != uint8(s) {
						continue
					}
					n := &c.nodes[ni]
					if ex, ok := byID[n.ID]; ok {
						foldNode(ex, n)
						continue
					}
					cp := *n
					if n.Attrs != nil {
						m := make(map[string]string, len(n.Attrs))
						for k, v := range n.Attrs {
							m[k] = v
						}
						cp.Attrs = m
					}
					byID[n.ID] = &cp
					st.nodes = append(st.nodes, nodeAt{pos: nb + ni, node: &cp})
				}
			}
			st.out = make(map[string][]*graph.Edge, len(byID))
			st.in = make(map[string][]*graph.Edge, len(byID))
			for pos, e := range edgePtrs {
				if edgeFromShard[pos] == uint8(s) {
					st.out[e.From] = append(st.out[e.From], e)
				}
				if edgeToShard[pos] == uint8(s) {
					st.in[e.To] = append(st.in[e.To], e)
				}
			}
		}(s)
	}
	wg.Wait()

	// Phase 3 — stitch: restore global insertion order across shards
	// (positions are unique, so the sort is a total deterministic
	// order), union the disjoint per-shard adjacency maps, and install.
	var distinct int
	for s := range states {
		distinct += len(states[s].nodes)
	}
	merged := make([]nodeAt, 0, distinct)
	for s := range states {
		merged = append(merged, states[s].nodes...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].pos < merged[j].pos })
	nodes := make([]*graph.Node, len(merged))
	for i := range merged {
		nodes[i] = merged[i].node
	}
	out := make(map[string][]*graph.Edge, distinct)
	in := make(map[string][]*graph.Edge, distinct)
	for s := range states {
		for k, v := range states[s].out {
			out[k] = v
		}
		for k, v := range states[s].in {
			in[k] = v
		}
	}
	g.InstallBulk(nodes, edgePtrs, out, in)
}

// foldNode applies graph.AddNode's update semantics to an existing
// folded node: volume accumulates, the time window widens (zero start
// timestamps never clobber real ones), attrs overwrite key-wise.
func foldNode(ex, n *graph.Node) {
	ex.Volume += n.Volume
	if n.StartNS != 0 && (ex.StartNS == 0 || n.StartNS < ex.StartNS) {
		ex.StartNS = n.StartNS
	}
	if n.EndNS > ex.EndNS {
		ex.EndNS = n.EndNS
	}
	for k, v := range n.Attrs {
		if ex.Attrs == nil {
			ex.Attrs = map[string]string{}
		}
		ex.Attrs[k] = v
	}
}
