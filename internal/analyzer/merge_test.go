package analyzer

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"dayu/internal/graph"
)

func countOccurrences(contribs []Contribution) (nodes, edges int) {
	for i := range contribs {
		nodes += len(contribs[i].nodes)
		edges += len(contribs[i].edges)
	}
	return nodes, edges
}

// TestShardMergeByteIdenticalToSerial is the property test behind the
// sharded merge's correctness claim: for FTG and SDG contributions
// over synthetic traces with heavily colliding node keys (shared files
// recur every 7 tasks, so file, dataset and region nodes all fold
// across contributions), shardMerge must produce byte-identical
// renderings to serialMerge at every shard count — including 1 — and
// GOMAXPROCS. Runs under -race in CI, which also exercises the phase
// barriers.
func TestShardMergeByteIdenticalToSerial(t *testing.T) {
	traces, m := syntheticTraces(150)
	ordered := OrderTasks(traces, m)
	descs := BuildObjectDescs(ordered)
	opts := Options{IncludeRegions: true, IncludeFileMetadata: true}.withDefaults()

	builders := []struct {
		name     string
		build    func(*testing.T) []Contribution
		decorate func(*graph.Graph)
	}{
		{
			name: "ftg",
			build: func(t *testing.T) []Contribution {
				out := make([]Contribution, len(ordered))
				for i, tt := range ordered {
					out[i] = FTGContribution(tt)
				}
				return out
			},
			decorate: markReuse,
		},
		{
			name: "sdg",
			build: func(t *testing.T) []Contribution {
				out := make([]Contribution, len(ordered))
				for i, tt := range ordered {
					out[i] = SDGContribution(tt, descs, opts)
				}
				return out
			},
			decorate: func(g *graph.Graph) { markReuse(g); markDatasetReuse(g) },
		},
	}

	shardCounts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			contribs := b.build(t)
			nodeOccs, edgeCount := countOccurrences(contribs)
			serial := graph.New("g")
			serialMerge(serial, contribs)
			b.decorate(serial)
			want := renderAll(t, serial)
			for _, shards := range shardCounts {
				t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
					g := graph.New("g")
					shardMerge(g, contribs, shards, nodeOccs, edgeCount)
					b.decorate(g)
					got := renderAll(t, g)
					for format, wantBytes := range want {
						if got[format] != wantBytes {
							t.Errorf("%s rendering diverges from serial merge at %d shards", format, shards)
						}
					}
				})
			}
		})
	}
}

// TestMergeContributionsDispatch pins the dispatcher itself: whatever
// path mergeContributions picks (serial below the occurrence
// threshold, sharded above it), output bytes match serialMerge.
func TestMergeContributionsDispatch(t *testing.T) {
	for _, tasks := range []int{3, 400} {
		t.Run(fmt.Sprintf("tasks=%d", tasks), func(t *testing.T) {
			traces, m := syntheticTraces(tasks)
			ordered := OrderTasks(traces, m)
			contribs := make([]Contribution, len(ordered))
			for i, tt := range ordered {
				contribs[i] = FTGContribution(tt)
			}
			serial := graph.New("g")
			serialMerge(serial, contribs)
			markReuse(serial)
			want := renderAll(t, serial)
			for _, par := range []int{1, 2, 8} {
				g := graph.New("g")
				mergeContributions(g, contribs, par)
				markReuse(g)
				got := renderAll(t, g)
				for format, wantBytes := range want {
					if got[format] != wantBytes {
						t.Errorf("parallelism %d: %s rendering diverges from serial", par, format)
					}
				}
			}
		})
	}
}

// TestArenaContributionsMatchStandalone checks that arena-backed
// contribution building (chunked parallel dispatch into pooled
// arenas) yields exactly the contributions the standalone exported
// hooks produce, and that arena reuse after release does not corrupt a
// subsequent build.
func TestArenaContributionsMatchStandalone(t *testing.T) {
	traces, m := syntheticTraces(97)
	ordered := OrderTasks(traces, m)
	want := make([]Contribution, len(ordered))
	for i, tt := range ordered {
		want[i] = FTGContribution(tt)
	}
	for round := 0; round < 3; round++ {
		for _, par := range []int{1, 3, runtime.GOMAXPROCS(0) + 2} {
			got, arenas := buildContributions(ordered, par, ftgContribute)
			if len(got) != len(want) {
				t.Fatalf("round %d par %d: got %d contributions, want %d", round, par, len(got), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(got[i].nodes, want[i].nodes) {
					t.Fatalf("round %d par %d: contribution %d nodes diverge", round, par, i)
				}
				if !reflect.DeepEqual(got[i].edges, want[i].edges) {
					t.Fatalf("round %d par %d: contribution %d edges diverge", round, par, i)
				}
			}
			releaseArenas(arenas)
		}
	}
}

// TestBuildersEndToEndAcrossParallelism drives the full public
// builders across parallelism settings on colliding-key synthetic
// traces, covering arena dispatch plus merge plus decoration in one
// pass. (TestSerialParallelEquivalence covers this too; this variant
// adds the region/metadata options and odd parallelism values.)
func TestBuildersEndToEndAcrossParallelism(t *testing.T) {
	traces, m := syntheticTraces(130)
	opts := Options{IncludeRegions: true, IncludeFileMetadata: true}
	serialFTG := renderAll(t, BuildFTGOpts(traces, m, Options{Parallelism: 1}))
	serialOpts := opts
	serialOpts.Parallelism = 1
	serialSDG := renderAll(t, BuildSDG(traces, m, serialOpts))
	for _, par := range []int{2, 3, 5, 0} {
		ftgOpts := Options{Parallelism: par}
		if got := renderAll(t, BuildFTGOpts(traces, m, ftgOpts)); !reflect.DeepEqual(got, serialFTG) {
			t.Errorf("FTG parallelism %d diverges from serial", par)
		}
		sdgOpts := opts
		sdgOpts.Parallelism = par
		if got := renderAll(t, BuildSDG(traces, m, sdgOpts)); !reflect.DeepEqual(got, serialSDG) {
			t.Errorf("SDG parallelism %d diverges from serial", par)
		}
	}
}

// TestFTGContributionAllocBudget holds the arena path to its
// allocation contract: building a task's contribution into a warmed
// arena allocates only the node-ID strings themselves ("task:"+x /
// "file:"+x concatenations — content the serial build pays for
// identically), bounded by one per node and edge occurrence. A
// regression here (per-task buffer allocations, goroutine/channel
// dispatch overhead creeping back into the build function) fails in CI
// instead of only surfacing as a BENCH number.
func TestFTGContributionAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	traces, _ := syntheticTraces(1)
	tt := traces[0]
	a := getArena()
	defer putArena(a)
	c := a.contribution(tt, ftgContribute) // warm capacity
	nodes, edges := len(c.nodes), len(c.edges)
	allocs := testing.AllocsPerRun(200, func() {
		a.nodes = a.nodes[:0]
		a.edges = a.edges[:0]
		_ = a.contribution(tt, ftgContribute)
	})
	budget := float64(nodes + 2*edges) // one ID string per node, two per edge
	if allocs > budget {
		t.Errorf("FTG contribution into warm arena allocates %.1f times per run, budget %.0f (%d nodes, %d edges; only ID strings may allocate)",
			allocs, budget, nodes, edges)
	}
}

// TestFTGMergeAllocBudget bounds the serial fold of one contribution
// into a fresh graph: O(1) allocations per node and edge (the clone
// plus index bookkeeping), nothing proportional to rendering or
// serialization.
func TestFTGMergeAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	traces, _ := syntheticTraces(1)
	contribs := []Contribution{FTGContribution(traces[0])}
	nodes, edges := countOccurrences(contribs)
	allocs := testing.AllocsPerRun(100, func() {
		g := graph.New("m")
		serialMerge(g, contribs)
	})
	budget := float64(4*(nodes+edges) + 12)
	if allocs > budget {
		t.Errorf("merging one FTG contribution allocates %.1f times per run, budget %.0f (%d nodes, %d edges)",
			allocs, budget, nodes, edges)
	}
}
