//go:build !race

package analyzer

const raceEnabled = false
