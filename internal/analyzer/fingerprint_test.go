package analyzer

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"dayu/internal/trace"
)

// referenceFingerprint is the original json.Marshal-based
// implementation, kept verbatim as the value oracle: the streaming
// Fingerprint must produce the same hash for every input, or every
// serve cache key would silently change.
func referenceFingerprint(d ObjectDescs, t *trace.TaskTrace) string {
	keys := make([]ObjectKey, 0, len(t.Mapped))
	seen := map[ObjectKey]bool{}
	for _, ms := range t.Mapped {
		k := ObjectKey{ms.File, ms.Object}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].File != keys[j].File {
			return keys[i].File < keys[j].File
		}
		return keys[i].Object < keys[j].Object
	})
	type entry struct {
		Key     ObjectKey          `json:"key"`
		Present bool               `json:"present"`
		Desc    trace.ObjectRecord `json:"desc,omitempty"`
	}
	entries := make([]entry, 0, len(keys))
	for _, k := range keys {
		e := entry{Key: k}
		if desc, ok := d[k]; ok {
			e.Present, e.Desc = true, desc
		}
		entries = append(entries, e)
	}
	data, err := json.Marshal(entries)
	if err != nil {
		panic(err)
	}
	return trace.HashBytes(data)
}

// nastyStrings exercises every branch of the JSON string escaper:
// quotes, backslashes, the three control-byte short forms, other
// control bytes, the HTML-escaped bytes, invalid UTF-8, multi-byte
// runes and the U+2028/U+2029 special cases.
var nastyStrings = []string{
	"",
	"plain",
	`with "quotes" and \backslashes\`,
	"newline\nreturn\rtab\t",
	"control\x00\x01\x1f bytes",
	"html <tags> & ampersands",
	"invalid utf8 \xff\xfe trailing",
	"truncated rune \xe2\x82",
	"unicode snowman ☃ and emoji 🜚",
	"line sep \u2028 here \u2029 there",
	"mixed ☃\x00<\xffok >",
}

func TestFingerprintMatchesJSONReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pick := func() string { return nastyStrings[rng.Intn(len(nastyStrings))] }
	for trial := 0; trial < 200; trial++ {
		descs := ObjectDescs{}
		tt := &trace.TaskTrace{Task: fmt.Sprintf("t%d", trial)}
		nmapped := rng.Intn(6)
		for i := 0; i < nmapped; i++ {
			file, obj := pick(), pick()
			tt.Mapped = append(tt.Mapped, trace.MappedStat{File: file, Object: obj})
			if rng.Intn(3) > 0 { // sometimes absent
				rec := trace.ObjectRecord{
					Task: pick(), File: file, Object: obj, Type: pick(),
					AcquiredNS: rng.Int63n(1e9) - 5e8, ReleasedNS: rng.Int63(),
					Reads: int64(rng.Intn(100)), Writes: int64(rng.Intn(100)),
					BytesRead: rng.Int63(), BytesWritten: rng.Int63(),
				}
				switch rng.Intn(4) {
				case 1: // optional fields set
					rec.Datatype, rec.Layout = pick(), pick()
					rec.ElemSize = int64(rng.Intn(16))
					rec.Shape = []int64{int64(rng.Intn(10)), -3}
					rec.ChunkDims = []int64{int64(rng.Intn(10))}
				case 2: // empty-but-non-nil slices (omitempty drops both)
					rec.Shape = []int64{}
					rec.ChunkDims = []int64{}
				}
				descs[ObjectKey{file, obj}] = rec
			}
		}
		// Duplicate a mapped entry sometimes so dedup is exercised.
		if nmapped > 0 && rng.Intn(2) == 0 {
			tt.Mapped = append(tt.Mapped, tt.Mapped[0])
		}
		want := referenceFingerprint(descs, tt)
		if got := descs.Fingerprint(tt); got != want {
			t.Fatalf("trial %d: fingerprint %s diverges from json.Marshal reference %s\nmapped: %#v",
				trial, got, want, tt.Mapped)
		}
	}
}

func TestFingerprintEmptyMapped(t *testing.T) {
	descs := ObjectDescs{}
	tt := &trace.TaskTrace{Task: "empty"}
	if got, want := descs.Fingerprint(tt), referenceFingerprint(descs, tt); got != want {
		t.Fatalf("empty-mapped fingerprint %s, reference %s", got, want)
	}
	// Pin the absolute value too: SHA-256 of the two-byte document "[]".
	if got := descs.Fingerprint(tt); got != trace.HashBytes([]byte("[]")) {
		t.Fatalf("empty-mapped fingerprint %s is not the hash of %q", got, "[]")
	}
}

// TestFingerprintAllocBudget keeps the serve hot path honest: the
// streaming fingerprint must not re-materialize the JSON document.
// Sorting keys and the digest itself are allowed a handful of
// allocations; the old implementation allocated the entire document
// plus per-entry reflection state.
func TestFingerprintAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	descs := ObjectDescs{}
	tt := &trace.TaskTrace{Task: "alloc"}
	for i := 0; i < 16; i++ {
		file, obj := fmt.Sprintf("f%02d.h5", i), fmt.Sprintf("/obj/%02d", i)
		tt.Mapped = append(tt.Mapped, trace.MappedStat{File: file, Object: obj})
		descs[ObjectKey{file, obj}] = trace.ObjectRecord{
			Task: "alloc", File: file, Object: obj, Type: "dataset",
			Datatype: "float64", Layout: "chunked", ElemSize: 8,
			Shape: []int64{128, 128}, ChunkDims: []int64{16, 16},
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = descs.Fingerprint(tt)
	})
	// keys slice + seen map + sha256 state + hex output, roughly; the
	// point is it no longer scales with the document size.
	if allocs > 12 {
		t.Errorf("Fingerprint allocates %.1f times per run, budget 12", allocs)
	}
}
