//go:build race

package analyzer

// raceEnabled reports whether the race detector is active; allocation
// budget tests skip under it because instrumentation skews counts.
const raceEnabled = true
