// Package analyzer implements DaYu's Workflow Analyzer (paper §V): it
// connects per-task traces into File-Task Graphs (FTGs) and Semantic
// Dataflow Graphs (SDGs), decorates them with access statistics, and
// offers resolution adjustment (aggregation by stage or dataset count)
// for complex workflows.
//
// Graph construction is parallel end to end: per-task node/edge
// contributions are computed in contiguous chunks into pooled
// worker-owned arenas (Options.Parallelism workers claiming chunks off
// an atomic counter), then folded into the graph by the shard-then-
// stitch merge in merge.go — nodes are sharded by key, folded per
// shard in global occurrence order, and stitched back into serial
// insertion order. The result — node IDs, edge order, every rendered
// byte — is identical to a serial build at every parallelism setting.
package analyzer

import (
	"fmt"
	"runtime"
	"sort"

	"dayu/internal/graph"
	"dayu/internal/trace"
)

// Options controls graph construction.
type Options struct {
	// PageSize divides file addresses into regions for SDG address
	// nodes (the paper's configurable page size; Figure 3 and 8).
	PageSize int64
	// IncludeRegions adds file-address-region nodes to SDGs.
	IncludeRegions bool
	// IncludeFileMetadata adds the File-Metadata pseudo-dataset node for
	// unattributed metadata traffic (Figure 8b's Box 2).
	IncludeFileMetadata bool
	// Parallelism bounds the worker pool computing per-task graph
	// contributions: <= 0 means GOMAXPROCS, 1 forces the serial path.
	// Every setting produces byte-identical output.
	Parallelism int
}

func (o Options) withDefaults() Options {
	if o.PageSize == 0 {
		o.PageSize = 4096
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	return o
}

// taskNodeID and fileNodeID build stable node identifiers.
func taskNodeID(task string) string { return "task:" + task }
func fileNodeID(file string) string { return "file:" + file }
func datasetNodeID(file, object string) string {
	return "dataset:" + file + "::" + object
}
func regionNodeID(file string, p1, p2 int64) string {
	return fmt.Sprintf("region:%s::[%d-%d)", file, p1, p2)
}
func metaNodeID(file string) string { return "meta:" + file + "::File-Metadata" }

// OrderTasks returns traces ordered by manifest task order when given,
// otherwise by start timestamp. This is the canonical merge order: both
// the batch builders and the incremental serve path feed contributions
// through it, which is what keeps their outputs byte-identical.
func OrderTasks(traces []*trace.TaskTrace, m *trace.Manifest) []*trace.TaskTrace {
	out := append([]*trace.TaskTrace(nil), traces...)
	if m != nil && len(m.TaskOrder) > 0 {
		rank := make(map[string]int, len(m.TaskOrder))
		for i, t := range m.TaskOrder {
			rank[t] = i
		}
		sort.SliceStable(out, func(i, j int) bool {
			ri, oki := rank[out[i].Task]
			rj, okj := rank[out[j].Task]
			switch {
			case oki && okj:
				return ri < rj
			case oki:
				return true
			case okj:
				return false
			default:
				return out[i].StartNS < out[j].StartNS
			}
		})
		return out
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartNS < out[j].StartNS })
	return out
}

// bandwidth computes bytes/sec over a nanosecond window. Degenerate
// windows (a single-op instant, or inverted timestamps) return 0, which
// renderers and diagnostics treat as "unknown" — dividing by a clamped
// 1 ns would report a roughly billion-fold inflated bandwidth.
func bandwidth(bytes int64, firstNS, lastNS int64) float64 {
	dt := lastNS - firstNS
	if dt <= 0 {
		return 0
	}
	return float64(bytes) / (float64(dt) / 1e9)
}

// Contribution is one task's share of a graph: the nodes and edges the
// serial build would have added while visiting that task, in the exact
// order it would have added them. Contributions are computed in
// parallel (they are pure functions of one trace) and merged serially.
type Contribution struct {
	nodes []graph.Node
	edges []graph.Edge
}

func (c *Contribution) addNode(n graph.Node) { c.nodes = append(c.nodes, n) }
func (c *Contribution) addEdge(e graph.Edge) { c.edges = append(c.edges, e) }

// BuildFTG constructs the File-Task Graph: tasks and files as nodes,
// directed read/write edges decorated with access statistics, and
// data-reuse marking for files consumed by multiple tasks.
func BuildFTG(traces []*trace.TaskTrace, m *trace.Manifest) *graph.Graph {
	return BuildFTGOpts(traces, m, Options{})
}

// BuildFTGOpts is BuildFTG with explicit construction options (only
// Parallelism applies to FTGs).
func BuildFTGOpts(traces []*trace.TaskTrace, m *trace.Manifest, opts Options) *graph.Graph {
	opts = opts.withDefaults()
	ordered := OrderTasks(traces, m)
	contribs, arenas := buildContributions(ordered, opts.Parallelism, ftgContribute)
	g := buildFTGFrom(contribs, opts.Parallelism)
	releaseArenas(arenas)
	return g
}

// FTGContribution computes one task's FTG nodes and edges. The
// returned contribution owns its memory (no pooled backing store), so
// callers — the serve contribution cache — may retain it indefinitely.
func FTGContribution(t *trace.TaskTrace) Contribution {
	var c Contribution
	ftgContribute(t, &c)
	return c
}

// ftgContribute appends one task's FTG nodes and edges to c, in the
// exact order the serial build would add them.
func ftgContribute(t *trace.TaskTrace, c *Contribution) {
	c.addNode(graph.Node{
		ID: taskNodeID(t.Task), Kind: graph.KindTask, Label: t.Task,
		StartNS: t.StartNS, EndNS: t.EndNS,
	})
	for _, fr := range t.Files {
		c.addNode(graph.Node{
			ID: fileNodeID(fr.File), Kind: graph.KindFile, Label: fr.File,
			StartNS: fr.OpenNS, EndNS: fr.CloseNS,
			Volume: fr.BytesRead + fr.BytesWritten,
		})
		if fr.BytesRead > 0 || (fr.Reads > 0 && fr.Writes == 0) {
			c.addEdge(graph.Edge{
				From: fileNodeID(fr.File), To: taskNodeID(t.Task), Op: graph.OpRead,
				Volume:    fr.BytesRead,
				Bandwidth: bandwidth(fr.BytesRead, fr.OpenNS, fr.CloseNS),
				Ops:       fr.Reads, MetaOps: fr.MetaOps, DataOps: fr.DataOps,
				AvgSize: avg(fr.BytesRead, fr.Reads),
			})
		}
		if fr.BytesWritten > 0 || (fr.Writes > 0 && fr.Reads == 0) {
			c.addEdge(graph.Edge{
				From: taskNodeID(t.Task), To: fileNodeID(fr.File), Op: graph.OpWrite,
				Volume:    fr.BytesWritten,
				Bandwidth: bandwidth(fr.BytesWritten, fr.OpenNS, fr.CloseNS),
				Ops:       fr.Writes, MetaOps: fr.MetaOps, DataOps: fr.DataOps,
				AvgSize: avg(fr.BytesWritten, fr.Writes),
			})
		}
	}
}

func avg(bytes, ops int64) int64 {
	if ops == 0 {
		return 0
	}
	return bytes / ops
}

func mustAdd(g *graph.Graph, e graph.Edge) {
	if _, err := g.AddEdge(e); err != nil {
		// Endpoints are always added before edges in this package.
		panic(err)
	}
}

// markReuse flags outgoing read edges of any file consumed by two or
// more distinct tasks (the orange edges of Figure 4).
func markReuse(g *graph.Graph) {
	for _, n := range g.NodesOfKind(graph.KindFile) {
		readers := map[string]bool{}
		for _, e := range g.OutEdges(n.ID) {
			if e.Op == graph.OpRead {
				readers[e.To] = true
			}
		}
		if len(readers) >= 2 {
			for _, e := range g.OutEdges(n.ID) {
				if e.Op == graph.OpRead {
					e.Reused = true
				}
			}
		}
	}
}

// ObjectKey identifies a data object for SDG decoration lookups.
type ObjectKey struct{ File, Object string }

// ObjectDescs indexes object descriptions (Table I records) by file
// and object name; SDG dataset nodes are decorated from it.
type ObjectDescs map[ObjectKey]trace.ObjectRecord

// BuildObjectDescs collects object descriptions from the ordered
// traces; later tasks' descriptions win, matching the serial build.
func BuildObjectDescs(ordered []*trace.TaskTrace) ObjectDescs {
	descs := ObjectDescs{}
	for _, t := range ordered {
		for _, o := range t.Objects {
			descs[ObjectKey{o.File, o.Object}] = o
		}
	}
	return descs
}

// BuildSDG constructs the Semantic Dataflow Graph: the FTG plus a
// dataset layer between tasks and files, optionally refined with file
// address-region nodes and the File-Metadata pseudo-dataset.
func BuildSDG(traces []*trace.TaskTrace, m *trace.Manifest, opts Options) *graph.Graph {
	opts = opts.withDefaults()
	ordered := OrderTasks(traces, m)
	descs := BuildObjectDescs(ordered)
	contribs, arenas := buildContributions(ordered, opts.Parallelism, func(t *trace.TaskTrace, c *Contribution) {
		sdgContribute(t, descs, opts, c)
	})
	g := buildSDGFrom(contribs, opts.Parallelism)
	releaseArenas(arenas)
	return g
}

// sdgContribute appends one task's SDG nodes and edges to c, in the
// exact order the serial build would add them. descs is read-only
// shared state (safe for concurrent readers).
func sdgContribute(t *trace.TaskTrace, descs ObjectDescs, opts Options, c *Contribution) {
	c.addNode(graph.Node{
		ID: taskNodeID(t.Task), Kind: graph.KindTask, Label: t.Task,
		StartNS: t.StartNS, EndNS: t.EndNS,
	})
	for _, fr := range t.Files {
		c.addNode(graph.Node{
			ID: fileNodeID(fr.File), Kind: graph.KindFile, Label: fr.File,
			StartNS: fr.OpenNS, EndNS: fr.CloseNS,
			Volume: fr.BytesRead + fr.BytesWritten,
		})
	}
	for _, ms := range t.Mapped {
		if ms.Object == "" {
			if opts.IncludeFileMetadata && ms.MetaOps > 0 {
				addMetaNode(c, t, ms)
			}
			continue
		}
		nodeID := datasetNodeID(ms.File, ms.Object)
		attrs := map[string]string{}
		if d, ok := descs[ObjectKey{ms.File, ms.Object}]; ok {
			attrs["datatype"] = d.Datatype
			attrs["layout"] = d.Layout
			attrs["shape"] = fmt.Sprint(d.Shape)
		}
		c.addNode(graph.Node{
			ID: nodeID, Kind: graph.KindDataset, Label: ms.Object,
			StartNS: ms.FirstNS, EndNS: ms.LastNS,
			Volume: ms.Bytes(), Attrs: attrs,
		})
		// Access edges between task and dataset.
		op := operationLabel(ms)
		if ms.Writes > 0 {
			c.addEdge(graph.Edge{
				From: taskNodeID(t.Task), To: nodeID, Op: graph.OpWrite,
				Volume:    ms.Bytes(),
				Bandwidth: bandwidth(ms.Bytes(), ms.FirstNS, ms.LastNS),
				Ops:       ms.Ops(), MetaOps: ms.MetaOps, DataOps: ms.DataOps,
				AvgSize: avg(ms.Bytes(), ms.Ops()),
				Attrs:   map[string]string{"operation": op},
			})
		}
		if ms.Reads > 0 {
			c.addEdge(graph.Edge{
				From: nodeID, To: taskNodeID(t.Task), Op: graph.OpRead,
				Volume:    ms.Bytes(),
				Bandwidth: bandwidth(ms.Bytes(), ms.FirstNS, ms.LastNS),
				Ops:       ms.Ops(), MetaOps: ms.MetaOps, DataOps: ms.DataOps,
				AvgSize: avg(ms.Bytes(), ms.Ops()),
				Attrs:   map[string]string{"operation": op},
			})
		}
		// Structural edges to regions/file.
		if opts.IncludeRegions {
			addRegionEdges(c, ms, opts.PageSize, nodeID)
		} else {
			c.addEdge(graph.Edge{From: nodeID, To: fileNodeID(ms.File), Op: graph.OpMap})
		}
	}
}

// operationLabel summarizes the access mode (Figure 7 shows
// "read_only" in the statistics pop-up).
func operationLabel(ms trace.MappedStat) string {
	switch {
	case ms.Reads > 0 && ms.Writes > 0:
		return "read_write"
	case ms.Reads > 0:
		return "read_only"
	case ms.Writes > 0:
		return "write_only"
	}
	return "none"
}

func addMetaNode(c *Contribution, t *trace.TaskTrace, ms trace.MappedStat) {
	nodeID := metaNodeID(ms.File)
	c.addNode(graph.Node{
		ID: nodeID, Kind: graph.KindMeta, Label: "File-Metadata",
		StartNS: ms.FirstNS, EndNS: ms.LastNS, Volume: ms.MetaBytes,
	})
	if ms.Writes > 0 {
		c.addEdge(graph.Edge{
			From: taskNodeID(t.Task), To: nodeID, Op: graph.OpWrite,
			Volume: ms.MetaBytes, Ops: ms.Ops(), MetaOps: ms.MetaOps,
			Bandwidth: bandwidth(ms.MetaBytes, ms.FirstNS, ms.LastNS),
		})
	}
	if ms.Reads > 0 {
		c.addEdge(graph.Edge{
			From: nodeID, To: taskNodeID(t.Task), Op: graph.OpRead,
			Volume: ms.MetaBytes, Ops: ms.Ops(), MetaOps: ms.MetaOps,
			Bandwidth: bandwidth(ms.MetaBytes, ms.FirstNS, ms.LastNS),
		})
	}
	c.addEdge(graph.Edge{From: nodeID, To: fileNodeID(ms.File), Op: graph.OpMap})
}

// addRegionEdges converts the object's merged extents into page-range
// region nodes: dataset -> region -> file (Figure 3's addr nodes).
func addRegionEdges(c *Contribution, ms trace.MappedStat, pageSize int64, datasetID string) {
	for _, ext := range ms.Regions {
		p1 := ext.Start / pageSize
		p2 := (ext.End + pageSize - 1) / pageSize
		if p2 == p1 {
			p2 = p1 + 1
		}
		rid := regionNodeID(ms.File, p1, p2)
		c.addNode(graph.Node{
			ID: rid, Kind: graph.KindRegion,
			Label:  fmt.Sprintf("[%d-%d)", p1, p2),
			Volume: ext.Len(),
		})
		c.addEdge(graph.Edge{From: datasetID, To: rid, Op: graph.OpMap, Volume: ext.Len()})
		c.addEdge(graph.Edge{From: rid, To: fileNodeID(ms.File), Op: graph.OpMap})
	}
}

// markDatasetReuse flags read edges of datasets consumed by multiple
// tasks.
func markDatasetReuse(g *graph.Graph) {
	for _, n := range g.NodesOfKind(graph.KindDataset) {
		readers := map[string]bool{}
		for _, e := range g.OutEdges(n.ID) {
			if e.Op == graph.OpRead {
				readers[e.To] = true
			}
		}
		if len(readers) >= 2 {
			for _, e := range g.OutEdges(n.ID) {
				if e.Op == graph.OpRead {
					e.Reused = true
				}
			}
		}
	}
}
