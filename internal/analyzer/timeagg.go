package analyzer

// Incremental windowed aggregation for live serving. The live view
// re-renders on every folded checkpoint, but a windowed graph
// (AggregateByTime) usually does not change when a snapshot advances:
// most folds touch one task, and the windowed projection of every
// other bucket — and often even the touched one — is identical.
// TimeAggCache makes the common live polling pattern (same windows
// requested against a slowly-advancing snapshot stream) cheap by
// detecting, per window-bucket, that the aggregation inputs did not
// change, and reusing the previously built graph wholesale when no
// bucket did.
//
// Correctness contract: Aggregate returns a graph BYTE-IDENTICAL (once
// rendered) to AggregateByTime(g, windowNS) — reuse happens only when
// a fingerprint of everything AggregateByTime reads (task nodes and
// their bucket assignment, non-task nodes, every edge with remapped
// endpoints, insertion order, graph name) is unchanged. Fingerprints
// are 64-bit FNV-1a over the full field values, so a false "unchanged"
// requires a hash collision between two observed states of one window.
//
// The returned graph is shared and must be treated as immutable, the
// same ownership rule the serve render cache already imposes on
// snapshot graphs.

import (
	"fmt"
	"hash"
	"hash/fnv"
	"sync"

	"dayu/internal/graph"
)

// DefaultTimeAggWindows bounds distinct (stream, window) cache entries.
const DefaultTimeAggWindows = 8

// TimeAggCache caches AggregateByTime outputs across snapshots. Safe
// for concurrent use.
type TimeAggCache struct {
	mu         sync.Mutex
	maxEntries int
	entries    map[string]*timeAggEntry
	order      []string // LRU, most recently used last

	hits           int64
	misses         int64
	bucketsReused  int64
	bucketsRebuilt int64
}

// timeAggEntry is the retained state for one (stream, window) pair.
type timeAggEntry struct {
	snapshotID string
	restFP     uint64 // non-task nodes, unbucketed edges, name, minStart
	bucketFP   map[string]uint64
	out        *graph.Graph
}

// TimeAggStats reports cache effectiveness.
type TimeAggStats struct {
	// Hits are calls answered from cache: same snapshot, or a new
	// snapshot whose windowed projection was proven unchanged.
	Hits int64
	// Misses are calls that rebuilt the windowed graph.
	Misses int64
	// BucketsReused / BucketsRebuilt break misses and cross-snapshot
	// hits down by window bucket: reused buckets had identical inputs
	// to the previous snapshot's.
	BucketsReused  int64
	BucketsRebuilt int64
}

// NewTimeAggCache builds a cache holding at most maxEntries distinct
// (stream, window) pairs; maxEntries <= 0 means DefaultTimeAggWindows.
func NewTimeAggCache(maxEntries int) *TimeAggCache {
	if maxEntries <= 0 {
		maxEntries = DefaultTimeAggWindows
	}
	return &TimeAggCache{maxEntries: maxEntries, entries: map[string]*timeAggEntry{}}
}

// Aggregate returns AggregateByTime(g, windowNS), reusing the cached
// result when possible. stream namespaces independent graph sequences
// (e.g. "ftg" vs "sdg"); snapshotID identifies g's generation — equal
// ids mean an identical graph, different ids mean "recheck via
// fingerprints".
func (c *TimeAggCache) Aggregate(g *graph.Graph, stream, snapshotID string, windowNS int64) (*graph.Graph, error) {
	if windowNS <= 0 {
		return nil, fmt.Errorf("%w: %dns", ErrNonPositiveWindow, windowNS)
	}
	key := fmt.Sprintf("%s|%d", stream, windowNS)

	c.mu.Lock()
	e := c.entries[key]
	if e != nil && e.snapshotID == snapshotID {
		c.hits++
		c.touchLocked(key)
		out := e.out
		c.mu.Unlock()
		return out, nil
	}
	c.mu.Unlock()

	// Fingerprint outside the lock: hashing is the expensive part and
	// concurrent renders of different windows must not serialize on it.
	restFP, bucketFP := fingerprintWindow(g, windowNS)

	c.mu.Lock()
	defer c.mu.Unlock()
	e = c.entries[key]
	if e != nil && e.restFP == restFP && fpEqual(e.bucketFP, bucketFP) {
		// A new snapshot whose windowed inputs are unchanged: reuse the
		// built graph, remember the new snapshot id so the next call
		// short-circuits without hashing.
		c.hits++
		c.bucketsReused += int64(len(bucketFP))
		e.snapshotID = snapshotID
		c.touchLocked(key)
		return e.out, nil
	}

	out, err := AggregateByTime(g, windowNS)
	if err != nil {
		return nil, err
	}
	c.misses++
	for id, fp := range bucketFP {
		if e != nil && e.bucketFP[id] == fp {
			c.bucketsReused++
		} else {
			c.bucketsRebuilt++
		}
	}
	c.entries[key] = &timeAggEntry{snapshotID: snapshotID, restFP: restFP, bucketFP: bucketFP, out: out}
	c.touchLocked(key)
	c.evictLocked()
	return out, nil
}

// Stats returns a snapshot of the cache counters.
func (c *TimeAggCache) Stats() TimeAggStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return TimeAggStats{
		Hits: c.hits, Misses: c.misses,
		BucketsReused: c.bucketsReused, BucketsRebuilt: c.bucketsRebuilt,
	}
}

func (c *TimeAggCache) touchLocked(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
			return
		}
	}
	c.order = append(c.order, key)
}

func (c *TimeAggCache) evictLocked() {
	for len(c.order) > c.maxEntries {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
}

func fpEqual(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// fingerprintWindow hashes everything AggregateByTime reads, split by
// window bucket. Task nodes and edges touching a bucket hash into that
// bucket's fingerprint (edges touching two buckets hash into both);
// everything else — non-task nodes, edges between non-task nodes, the
// graph name, the bucket-assignment origin — hashes into restFP.
// Insertion order is captured because values are hashed in iteration
// order with a position counter.
func fingerprintWindow(g *graph.Graph, windowNS int64) (restFP uint64, bucketFP map[string]uint64) {
	var minStart int64
	for _, n := range g.NodesOfKind(graph.KindTask) {
		if minStart == 0 || (n.StartNS != 0 && n.StartNS < minStart) {
			minStart = n.StartNS
		}
	}
	remap := map[string]string{}
	for _, n := range g.NodesOfKind(graph.KindTask) {
		remap[n.ID] = fmt.Sprintf("window:%d", (n.StartNS-minStart)/windowNS)
	}

	buckets := map[string]*posHasher{}
	bucketOf := func(id string) *posHasher {
		h := buckets[id]
		if h == nil {
			h = newPosHasher()
			buckets[id] = h
		}
		return h
	}
	rest := newPosHasher()
	rest.add(g.Name, minStart, windowNS)

	for i, n := range g.Nodes() {
		if w, ok := remap[n.ID]; ok {
			bucketOf(w).add(i, *n)
			continue
		}
		rest.add(i, *n)
	}
	for i, e := range g.Edges() {
		from, fromBucketed := remap[e.From]
		to, toBucketed := remap[e.To]
		if !fromBucketed && !toBucketed {
			rest.add(i, *e)
			continue
		}
		if fromBucketed {
			bucketOf(from).add(i, *e, from, to)
		}
		if toBucketed && to != from {
			bucketOf(to).add(i, *e, from, to)
		}
	}

	bucketFP = make(map[string]uint64, len(buckets))
	for id, h := range buckets {
		bucketFP[id] = h.sum()
	}
	return rest.sum(), bucketFP
}

// posHasher accumulates values into an FNV-1a stream. Values are
// formatted with %+v, which prints struct fields in order and map
// contents sorted, so the hash is deterministic.
type posHasher struct{ h hash.Hash64 }

func newPosHasher() *posHasher { return &posHasher{h: fnv.New64a()} }

func (p *posHasher) add(vs ...interface{}) {
	for _, v := range vs {
		fmt.Fprintf(p.h, "%+v\x00", v)
	}
}

func (p *posHasher) sum() uint64 { return p.h.Sum64() }
