package analyzer

import (
	"crypto/sha256"
	"encoding/hex"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"unicode/utf8"

	"dayu/internal/graph"
	"dayu/internal/trace"
)

// This file is the analyzer's incremental-build surface: exported hooks
// that let a caller (the serve package) compute one task's graph
// contribution at a time, cache it under the task trace's content hash,
// and later merge cached contributions into a full graph. The hooks are
// the exact functions the batch builders use internally, so a merge of
// cached contributions in task order is byte-identical to
// BuildFTG/BuildSDG on a fresh load.

// SDGContribution computes one task's SDG contribution. The descs
// index must come from BuildObjectDescs over the full ordered trace
// set; the contribution is a pure function of (trace, relevant descs,
// options), which is what makes it cacheable — see
// ObjectDescs.Fingerprint for the cache-key component covering descs.
func SDGContribution(t *trace.TaskTrace, descs ObjectDescs, opts Options) Contribution {
	var c Contribution
	sdgContribute(t, descs, opts.withDefaults(), &c)
	return c
}

// Fingerprint returns a stable content hash of the description entries
// the task's mapped objects reference (present or absent alike). A
// cached SDG contribution keyed by (trace hash, fingerprint) stays
// valid until either the trace bytes or one of the descriptions it
// actually consumes changes — edits to unrelated tasks never
// invalidate it.
//
// The value is pinned: it is the SHA-256 of exactly the JSON document
// json.Marshal used to produce here ([{"key":{...},"present":...,
// "desc":{...}}, ...] over the sorted referenced keys), but the bytes
// are streamed into the digest from a pooled scratch buffer instead of
// materializing the document — this runs on the serve hot path once
// per task per ingest, and the Marshal allocation dominated it.
// TestFingerprintMatchesJSONReference holds the two byte streams
// equal.
func (d ObjectDescs) Fingerprint(t *trace.TaskTrace) string {
	keys := make([]ObjectKey, 0, len(t.Mapped))
	seen := map[ObjectKey]bool{}
	for _, ms := range t.Mapped {
		k := ObjectKey{ms.File, ms.Object}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].File != keys[j].File {
			return keys[i].File < keys[j].File
		}
		return keys[i].Object < keys[j].Object
	})
	h := sha256.New()
	bp := fingerprintBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, '[')
	for i, k := range keys {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"key":{"File":`...)
		b = appendJSONString(b, k.File)
		b = append(b, `,"Object":`...)
		b = appendJSONString(b, k.Object)
		b = append(b, `},"present":`...)
		desc, ok := d[k]
		if ok {
			b = append(b, `true`...)
		} else {
			desc = trace.ObjectRecord{}
			b = append(b, `false`...)
		}
		b = append(b, `,"desc":`...)
		b = appendObjectRecordJSON(b, &desc)
		b = append(b, '}')
		// Flush per entry so the scratch buffer stays small no matter
		// how many objects the task references.
		h.Write(b)
		b = b[:0]
	}
	b = append(b, ']')
	h.Write(b)
	*bp = b[:0]
	fingerprintBufPool.Put(bp)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return hex.EncodeToString(sum[:])
}

var fingerprintBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// appendObjectRecordJSON appends the record exactly as json.Marshal
// renders it: tag order, omitempty semantics (datatype/layout when
// empty, shape/chunk_dims when length zero, elem_size when zero) and
// compact separators.
func appendObjectRecordJSON(b []byte, r *trace.ObjectRecord) []byte {
	b = append(b, `{"task":`...)
	b = appendJSONString(b, r.Task)
	b = append(b, `,"file":`...)
	b = appendJSONString(b, r.File)
	b = append(b, `,"object":`...)
	b = appendJSONString(b, r.Object)
	b = append(b, `,"type":`...)
	b = appendJSONString(b, r.Type)
	if r.Datatype != "" {
		b = append(b, `,"datatype":`...)
		b = appendJSONString(b, r.Datatype)
	}
	if len(r.Shape) > 0 {
		b = append(b, `,"shape":`...)
		b = appendJSONInts(b, r.Shape)
	}
	if r.ElemSize != 0 {
		b = append(b, `,"elem_size":`...)
		b = strconv.AppendInt(b, r.ElemSize, 10)
	}
	if r.Layout != "" {
		b = append(b, `,"layout":`...)
		b = appendJSONString(b, r.Layout)
	}
	if len(r.ChunkDims) > 0 {
		b = append(b, `,"chunk_dims":`...)
		b = appendJSONInts(b, r.ChunkDims)
	}
	b = append(b, `,"acquired_ns":`...)
	b = strconv.AppendInt(b, r.AcquiredNS, 10)
	b = append(b, `,"released_ns":`...)
	b = strconv.AppendInt(b, r.ReleasedNS, 10)
	b = append(b, `,"reads":`...)
	b = strconv.AppendInt(b, r.Reads, 10)
	b = append(b, `,"writes":`...)
	b = strconv.AppendInt(b, r.Writes, 10)
	b = append(b, `,"bytes_read":`...)
	b = strconv.AppendInt(b, r.BytesRead, 10)
	b = append(b, `,"bytes_written":`...)
	b = strconv.AppendInt(b, r.BytesWritten, 10)
	return append(b, '}')
}

func appendJSONInts(b []byte, s []int64) []byte {
	b = append(b, '[')
	for i, v := range s {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, v, 10)
	}
	return append(b, ']')
}

const jsonHex = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal byte-for-byte as
// encoding/json renders it with HTML escaping on (its Marshal
// default): quote, backslash and control bytes escaped (the \n \r \t
// short forms, backslash-u00xx otherwise), the HTML-sensitive bytes
// '<' '>' '&' as backslash-u003c/e/6, invalid UTF-8 as the literal
// six-character escape backslash-ufffd, and U+2028/U+2029 as
// backslash-u2028/9.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', jsonHex[c>>4], jsonHex[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', jsonHex[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// BuildFTGFromContributions assembles the File-Task Graph from
// per-task contributions already in task order (see OrderTasks) and
// applies the whole-graph decoration passes. Contributions are not
// mutated and may be reused across calls; the merge runs the
// shard-then-stitch path at GOMAXPROCS when the input is large enough,
// with byte-identical output either way.
func BuildFTGFromContributions(contribs []Contribution) *graph.Graph {
	return buildFTGFrom(contribs, runtime.GOMAXPROCS(0))
}

func buildFTGFrom(contribs []Contribution, parallelism int) *graph.Graph {
	g := graph.New("File-Task Graph")
	mergeContributions(g, contribs, parallelism)
	markReuse(g)
	return g
}

// BuildSDGFromContributions is the SDG counterpart of
// BuildFTGFromContributions.
func BuildSDGFromContributions(contribs []Contribution) *graph.Graph {
	return buildSDGFrom(contribs, runtime.GOMAXPROCS(0))
}

func buildSDGFrom(contribs []Contribution, parallelism int) *graph.Graph {
	g := graph.New("Semantic Dataflow Graph")
	mergeContributions(g, contribs, parallelism)
	markReuse(g)
	markDatasetReuse(g)
	return g
}
