package analyzer

import (
	"encoding/json"
	"sort"

	"dayu/internal/graph"
	"dayu/internal/trace"
)

// This file is the analyzer's incremental-build surface: exported hooks
// that let a caller (the serve package) compute one task's graph
// contribution at a time, cache it under the task trace's content hash,
// and later merge cached contributions into a full graph. The hooks are
// the exact functions the batch builders use internally, so a merge of
// cached contributions in task order is byte-identical to
// BuildFTG/BuildSDG on a fresh load.

// SDGContribution computes one task's SDG contribution. The descs
// index must come from BuildObjectDescs over the full ordered trace
// set; the contribution is a pure function of (trace, relevant descs,
// options), which is what makes it cacheable — see
// ObjectDescs.Fingerprint for the cache-key component covering descs.
func SDGContribution(t *trace.TaskTrace, descs ObjectDescs, opts Options) Contribution {
	return sdgContribute(t, descs, opts.withDefaults())
}

// Fingerprint returns a stable content hash of the description entries
// the task's mapped objects reference (present or absent alike). A
// cached SDG contribution keyed by (trace hash, fingerprint) stays
// valid until either the trace bytes or one of the descriptions it
// actually consumes changes — edits to unrelated tasks never
// invalidate it.
func (d ObjectDescs) Fingerprint(t *trace.TaskTrace) string {
	keys := make([]ObjectKey, 0, len(t.Mapped))
	seen := map[ObjectKey]bool{}
	for _, ms := range t.Mapped {
		k := ObjectKey{ms.File, ms.Object}
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].File != keys[j].File {
			return keys[i].File < keys[j].File
		}
		return keys[i].Object < keys[j].Object
	})
	type entry struct {
		Key     ObjectKey          `json:"key"`
		Present bool               `json:"present"`
		Desc    trace.ObjectRecord `json:"desc,omitempty"`
	}
	entries := make([]entry, 0, len(keys))
	for _, k := range keys {
		e := entry{Key: k}
		if desc, ok := d[k]; ok {
			e.Present, e.Desc = true, desc
		}
		entries = append(entries, e)
	}
	data, err := json.Marshal(entries)
	if err != nil {
		// ObjectRecord marshals without error by construction.
		panic(err)
	}
	return trace.HashBytes(data)
}

// BuildFTGFromContributions assembles the File-Task Graph from
// per-task contributions already in task order (see OrderTasks) and
// applies the whole-graph decoration passes. Contributions are not
// mutated and may be reused across calls.
func BuildFTGFromContributions(contribs []Contribution) *graph.Graph {
	g := graph.New("File-Task Graph")
	merge(g, contribs)
	markReuse(g)
	return g
}

// BuildSDGFromContributions is the SDG counterpart of
// BuildFTGFromContributions.
func BuildSDGFromContributions(contribs []Contribution) *graph.Graph {
	g := graph.New("Semantic Dataflow Graph")
	merge(g, contribs)
	markReuse(g)
	markDatasetReuse(g)
	return g
}
