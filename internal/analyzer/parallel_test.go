package analyzer

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"dayu/internal/graph"
	"dayu/internal/trace"
)

func TestBandwidthDegenerateWindow(t *testing.T) {
	if bw := bandwidth(1024, 500, 500); bw != 0 {
		t.Errorf("zero-width window bandwidth = %v, want 0", bw)
	}
	if bw := bandwidth(1024, 500, 400); bw != 0 {
		t.Errorf("inverted window bandwidth = %v, want 0", bw)
	}
	if bw := bandwidth(1000, 0, 1e9); bw != 1000 {
		t.Errorf("1s window bandwidth = %v, want 1000 B/s", bw)
	}
}

// TestSingleTimestampTraceBandwidth is the regression test for the
// degenerate-window inflation: a trace whose whole I/O happens at one
// instant used to report bytes / 1e-9 s — a billion-fold inflated
// bandwidth that dominated edge coloring. It must now be 0 ("unknown").
func TestSingleTimestampTraceBandwidth(t *testing.T) {
	tt := &trace.TaskTrace{
		Task: "instant", StartNS: 100, EndNS: 100,
		Files: []trace.FileRecord{{
			Task: "instant", File: "flash.h5", OpenNS: 100, CloseNS: 100,
			Ops: 2, Writes: 2, BytesWritten: 4096, DataOps: 2, DataBytes: 4096,
		}},
		Mapped: []trace.MappedStat{{
			Task: "instant", File: "flash.h5", Object: "/d",
			DataOps: 2, DataBytes: 4096, Writes: 2,
			FirstNS: 100, LastNS: 100,
		}},
	}
	for name, g := range map[string]*graph.Graph{
		"ftg": BuildFTG([]*trace.TaskTrace{tt}, nil),
		"sdg": BuildSDG([]*trace.TaskTrace{tt}, nil, Options{}),
	} {
		for _, e := range g.Edges() {
			if e.Bandwidth != 0 {
				t.Errorf("%s: edge %s->%s bandwidth = %v, want 0 for degenerate window",
					name, e.From, e.To, e.Bandwidth)
			}
		}
		if html := g.HTML(); !strings.Contains(html, "unknown") {
			t.Errorf("%s: HTML does not label unknown bandwidth", name)
		}
		if html := g.HTML(); strings.Contains(html, "0.00 KB/s") {
			t.Errorf("%s: HTML still renders 0.00 KB/s for unmeasurable bandwidth", name)
		}
	}
}

// syntheticTraces builds a deterministic workflow with many tasks,
// shared files (reuse), datasets, regions, and unattributed metadata,
// exercising every branch of both builders.
func syntheticTraces(tasks int) ([]*trace.TaskTrace, *trace.Manifest) {
	var out []*trace.TaskTrace
	m := &trace.Manifest{Workflow: "synthetic"}
	for i := 0; i < tasks; i++ {
		name := fmt.Sprintf("task_%04d", i)
		m.TaskOrder = append(m.TaskOrder, name)
		base := int64(i) * 1000
		shared := fmt.Sprintf("shared_%02d.h5", i%7)
		own := fmt.Sprintf("out_%04d.h5", i)
		tt := &trace.TaskTrace{
			Task: name, StartNS: base, EndNS: base + 900,
			Files: []trace.FileRecord{
				{Task: name, File: shared, OpenNS: base + 10, CloseNS: base + 400,
					Ops: 8, Reads: 8, BytesRead: 1 << 16, MetaOps: 2, DataOps: 6,
					MetaBytes: 96, DataBytes: 1<<16 - 96},
				{Task: name, File: own, OpenNS: base + 400, CloseNS: base + 800,
					Ops: 6, Writes: 6, BytesWritten: 1 << 15, MetaOps: 1, DataOps: 5,
					MetaBytes: 64, DataBytes: 1<<15 - 64},
			},
			Objects: []trace.ObjectRecord{
				{Task: name, File: shared, Object: "/in", Type: "dataset",
					Datatype: "float64", Layout: "contiguous", Shape: []int64{1024},
					AcquiredNS: base + 11, ReleasedNS: base + 390, Reads: 8, BytesRead: 1 << 16},
				{Task: name, File: own, Object: "/res", Type: "dataset",
					Datatype: "float32", Layout: "chunked", Shape: []int64{512},
					AcquiredNS: base + 401, ReleasedNS: base + 790, Writes: 6, BytesWritten: 1 << 15},
			},
			Mapped: []trace.MappedStat{
				{Task: name, File: shared, Object: "/in", DataOps: 6, DataBytes: 1<<16 - 96,
					Reads: 6, Regions: []trace.Extent{{Start: 4096, End: 4096 + 1<<16}},
					FirstNS: base + 20, LastNS: base + 380},
				{Task: name, File: own, Object: "/res", DataOps: 5, DataBytes: 1<<15 - 64,
					Writes: 5, Regions: []trace.Extent{
						{Start: 0, End: 8192}, {Start: 16384, End: 16384 + 1<<14}},
					FirstNS: base + 410, LastNS: base + 780},
				{Task: name, File: own, Object: "", MetaOps: 1, MetaBytes: 64,
					Writes: 1, FirstNS: base + 405, LastNS: base + 405},
			},
		}
		out = append(out, tt)
	}
	return out, m
}

// renderAll captures every output format whose bytes must match
// between serial and parallel builds.
func renderAll(t *testing.T, g *graph.Graph) map[string]string {
	t.Helper()
	js, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]string{
		"dot": g.DOT(), "json": string(js), "html": g.HTML(), "svg": g.SVG(),
	}
}

func TestSerialParallelEquivalence(t *testing.T) {
	traces, m := syntheticTraces(120)
	for _, builder := range []struct {
		name  string
		build func(par int) *graph.Graph
	}{
		{"ftg", func(par int) *graph.Graph {
			return BuildFTGOpts(traces, m, Options{Parallelism: par})
		}},
		{"sdg", func(par int) *graph.Graph {
			return BuildSDG(traces, m, Options{Parallelism: par,
				IncludeRegions: true, IncludeFileMetadata: true})
		}},
	} {
		serial := renderAll(t, builder.build(1))
		for _, par := range []int{2, 4, 8, 0} {
			parallel := renderAll(t, builder.build(par))
			for format, want := range serial {
				if parallel[format] != want {
					t.Errorf("%s: parallelism %d: %s output differs from serial build",
						builder.name, par, format)
				}
			}
		}
	}
}

// TestSerialParallelEquivalenceWithoutManifest covers the
// timestamp-ordering fallback path.
func TestSerialParallelEquivalenceWithoutManifest(t *testing.T) {
	traces, _ := syntheticTraces(40)
	serial := renderAll(t, BuildFTGOpts(traces, nil, Options{Parallelism: 1}))
	parallel := renderAll(t, BuildFTGOpts(traces, nil, Options{Parallelism: 8}))
	for format, want := range serial {
		if parallel[format] != want {
			t.Errorf("no-manifest: %s output differs from serial build", format)
		}
	}
}
