package analyzer

import (
	"strings"
	"testing"

	"dayu/internal/graph"
	"dayu/internal/trace"
)

// fixtureTraces builds a small three-task workflow:
//
//	producer writes in.h5 (datasets /a, /b)
//	consumer1 reads in.h5 (/a) and writes out1.h5
//	consumer2 reads in.h5 (/a, metadata-only /b)
func fixtureTraces() []*trace.TaskTrace {
	return []*trace.TaskTrace{
		{
			Task: "producer", StartNS: 0, EndNS: 100,
			Files: []trace.FileRecord{{
				Task: "producer", File: "in.h5", OpenNS: 0, CloseNS: 90,
				Ops: 10, Writes: 10, BytesWritten: 4096,
				MetaOps: 4, DataOps: 6, MetaBytes: 96, DataBytes: 4000,
			}},
			Objects: []trace.ObjectRecord{
				{Task: "producer", File: "in.h5", Object: "/a", Type: "dataset",
					Datatype: "float64", Layout: "contiguous", Shape: []int64{256},
					AcquiredNS: 1, ReleasedNS: 80, Writes: 1, BytesWritten: 2048},
				{Task: "producer", File: "in.h5", Object: "/b", Type: "dataset",
					Datatype: "float64", Layout: "chunked", Shape: []int64{256},
					AcquiredNS: 1, ReleasedNS: 80, Writes: 1, BytesWritten: 2048},
			},
			Mapped: []trace.MappedStat{
				{Task: "producer", File: "in.h5", Object: "/a", DataOps: 3, DataBytes: 2048,
					Writes: 3, Regions: []trace.Extent{{Start: 512, End: 2560}}, FirstNS: 5, LastNS: 50},
				{Task: "producer", File: "in.h5", Object: "/b", DataOps: 3, MetaOps: 2,
					DataBytes: 2048, MetaBytes: 64, Writes: 5,
					Regions: []trace.Extent{{Start: 4096, End: 6144}}, FirstNS: 20, LastNS: 80},
				{Task: "producer", File: "in.h5", Object: "", MetaOps: 2, MetaBytes: 32,
					Writes: 2, Regions: []trace.Extent{{Start: 0, End: 48}}, FirstNS: 0, LastNS: 90},
			},
		},
		{
			Task: "consumer1", StartNS: 100, EndNS: 200,
			Files: []trace.FileRecord{
				{Task: "consumer1", File: "in.h5", OpenNS: 100, CloseNS: 150,
					Ops: 4, Reads: 4, BytesRead: 2048, MetaOps: 2, DataOps: 2,
					MetaBytes: 48, DataBytes: 2000},
				{Task: "consumer1", File: "out1.h5", OpenNS: 150, CloseNS: 190,
					Ops: 3, Writes: 3, BytesWritten: 1024, MetaOps: 1, DataOps: 2,
					MetaBytes: 24, DataBytes: 1000},
			},
			Mapped: []trace.MappedStat{
				{Task: "consumer1", File: "in.h5", Object: "/a", DataOps: 2, DataBytes: 2048,
					Reads: 2, Regions: []trace.Extent{{Start: 512, End: 2560}}, FirstNS: 105, LastNS: 140},
				{Task: "consumer1", File: "out1.h5", Object: "/res", DataOps: 2, DataBytes: 1024,
					Writes: 2, Regions: []trace.Extent{{Start: 512, End: 1536}}, FirstNS: 155, LastNS: 185},
			},
		},
		{
			Task: "consumer2", StartNS: 200, EndNS: 300,
			Files: []trace.FileRecord{{
				Task: "consumer2", File: "in.h5", OpenNS: 200, CloseNS: 290,
				Ops: 3, Reads: 3, BytesRead: 2100, MetaOps: 1, DataOps: 2,
				MetaBytes: 52, DataBytes: 2048,
			}},
			Mapped: []trace.MappedStat{
				{Task: "consumer2", File: "in.h5", Object: "/a", DataOps: 2, DataBytes: 2048,
					Reads: 2, Regions: []trace.Extent{{Start: 512, End: 2560}}, FirstNS: 205, LastNS: 250},
				// Metadata-only access (like contact_map in Figure 7).
				{Task: "consumer2", File: "in.h5", Object: "/b", MetaOps: 1, MetaBytes: 52,
					Reads: 1, Regions: []trace.Extent{{Start: 4096, End: 4148}}, FirstNS: 260, LastNS: 260},
			},
		},
	}
}

func fixtureManifest() *trace.Manifest {
	return &trace.Manifest{
		Workflow:   "fixture",
		TaskOrder:  []string{"producer", "consumer1", "consumer2"},
		Stages:     map[string][]string{"produce": {"producer"}, "consume": {"consumer1", "consumer2"}},
		StageOrder: []string{"produce", "consume"},
	}
}

func TestBuildFTG(t *testing.T) {
	g := BuildFTG(fixtureTraces(), fixtureManifest())
	if n := len(g.NodesOfKind(graph.KindTask)); n != 3 {
		t.Fatalf("tasks = %d", n)
	}
	if n := len(g.NodesOfKind(graph.KindFile)); n != 2 {
		t.Fatalf("files = %d", n)
	}
	// producer -> in.h5 write edge.
	var prodWrite, reuse1, reuse2 bool
	for _, e := range g.Edges() {
		if e.From == "task:producer" && e.To == "file:in.h5" && e.Op == graph.OpWrite {
			prodWrite = true
			if e.Volume != 4096 || e.Ops != 10 {
				t.Errorf("producer write edge stats: %+v", e)
			}
			if e.Bandwidth <= 0 {
				t.Error("bandwidth not computed")
			}
		}
		if e.From == "file:in.h5" && e.To == "task:consumer1" && e.Op == graph.OpRead {
			reuse1 = e.Reused
		}
		if e.From == "file:in.h5" && e.To == "task:consumer2" && e.Op == graph.OpRead {
			reuse2 = e.Reused
		}
	}
	if !prodWrite {
		t.Error("producer write edge missing")
	}
	// in.h5 read by two tasks: both read edges flagged as reuse.
	if !reuse1 || !reuse2 {
		t.Errorf("reuse flags = %v %v", reuse1, reuse2)
	}
	// out1.h5 written once, never read: no reuse flag.
	for _, e := range g.OutEdges("file:out1.h5") {
		if e.Reused {
			t.Error("out1.h5 wrongly marked reused")
		}
	}
}

func TestBuildFTGOrderingWithoutManifest(t *testing.T) {
	g := BuildFTG(fixtureTraces(), nil)
	if g.NumNodes() == 0 {
		t.Fatal("empty graph")
	}
	// Task nodes keep their start times for layout.
	if g.Node("task:consumer2").StartNS != 200 {
		t.Error("task timing lost")
	}
}

func TestBuildSDG(t *testing.T) {
	g := BuildSDG(fixtureTraces(), fixtureManifest(), Options{})
	dsets := g.NodesOfKind(graph.KindDataset)
	if len(dsets) != 3 { // /a, /b in in.h5; /res in out1.h5
		t.Fatalf("datasets = %d", len(dsets))
	}
	// Dataset /a is read by two tasks: its read edges are reuse-marked.
	aID := "dataset:in.h5::/a"
	if g.Node(aID) == nil {
		t.Fatal("dataset node /a missing")
	}
	readEdges := 0
	for _, e := range g.OutEdges(aID) {
		if e.Op == graph.OpRead {
			readEdges++
			if !e.Reused {
				t.Error("dataset reuse not marked")
			}
		}
	}
	if readEdges != 2 {
		t.Errorf("read edges = %d", readEdges)
	}
	// consumer2's /b access is metadata-only and labeled read_only.
	var metaOnly bool
	for _, e := range g.OutEdges("dataset:in.h5::/b") {
		if e.To == "task:consumer2" {
			metaOnly = true
			if e.DataOps != 0 || e.MetaOps != 1 {
				t.Errorf("metadata-only edge: %+v", e)
			}
			if e.Attrs["operation"] != "read_only" {
				t.Errorf("operation label = %q", e.Attrs["operation"])
			}
		}
	}
	if !metaOnly {
		t.Error("metadata-only edge missing")
	}
	// Dataset decorations from object records.
	if g.Node(aID).Attrs["layout"] != "contiguous" {
		t.Errorf("dataset attrs = %v", g.Node(aID).Attrs)
	}
	// Without regions, datasets map directly to files.
	if len(g.NodesOfKind(graph.KindRegion)) != 0 {
		t.Error("regions present though disabled")
	}
}

func TestBuildSDGWithRegions(t *testing.T) {
	g := BuildSDG(fixtureTraces(), fixtureManifest(), Options{
		PageSize: 1024, IncludeRegions: true, IncludeFileMetadata: true,
	})
	regions := g.NodesOfKind(graph.KindRegion)
	if len(regions) == 0 {
		t.Fatal("no region nodes")
	}
	// /a touched [512,2560) with page 1024 -> pages [0,3).
	rid := "region:in.h5::[0-3)"
	if g.Node(rid) == nil {
		ids := []string{}
		for _, r := range regions {
			ids = append(ids, r.ID)
		}
		t.Fatalf("expected region %s, have %v", rid, ids)
	}
	// dataset -> region -> file chain.
	foundChain := false
	for _, e := range g.OutEdges("dataset:in.h5::/a") {
		if e.To == rid {
			for _, e2 := range g.OutEdges(rid) {
				if e2.To == "file:in.h5" {
					foundChain = true
				}
			}
		}
	}
	if !foundChain {
		t.Error("dataset->region->file chain missing")
	}
	// File-Metadata pseudo node for unattributed superblock traffic.
	if g.Node("meta:in.h5::File-Metadata") == nil {
		t.Error("File-Metadata node missing")
	}
}

func TestAggregateByStage(t *testing.T) {
	g := BuildFTG(fixtureTraces(), fixtureManifest())
	agg, err := AggregateByStage(g, fixtureManifest())
	if err != nil {
		t.Fatal(err)
	}
	stages := agg.NodesOfKind(graph.KindStage)
	if len(stages) != 2 {
		t.Fatalf("stages = %d", len(stages))
	}
	if len(agg.NodesOfKind(graph.KindTask)) != 0 {
		t.Error("task nodes survived aggregation")
	}
	// The two consumer read edges merged into one stage edge.
	var consumeRead *graph.Edge
	for _, e := range agg.Edges() {
		if e.From == "file:in.h5" && e.To == "stage:consume" && e.Op == graph.OpRead {
			if consumeRead != nil {
				t.Fatal("read edges not merged")
			}
			consumeRead = e
		}
	}
	if consumeRead == nil {
		t.Fatal("merged stage read edge missing")
	}
	if consumeRead.Volume != 2048+2100 {
		t.Errorf("merged volume = %d", consumeRead.Volume)
	}
	// Nil manifest: pass-through.
	if same, err := AggregateByStage(g, nil); err != nil || same != g {
		t.Errorf("nil manifest should pass through (err=%v)", err)
	}
}

func TestCollapseDatasets(t *testing.T) {
	// File with many datasets collapses; others stay.
	traces := fixtureTraces()
	many := &trace.TaskTrace{Task: "scatter", StartNS: 300, EndNS: 400}
	many.Files = []trace.FileRecord{{Task: "scatter", File: "s.h5", OpenNS: 300, CloseNS: 390,
		Ops: 40, Writes: 40, BytesWritten: 40 * 100, MetaOps: 20, DataOps: 20}}
	for i := 0; i < 40; i++ {
		many.Mapped = append(many.Mapped, trace.MappedStat{
			Task: "scatter", File: "s.h5", Object: "/small_" + string(rune('a'+i%26)) + string(rune('0'+i/26)),
			DataOps: 1, DataBytes: 100, Writes: 1,
			Regions: []trace.Extent{{Start: int64(i * 100), End: int64(i*100 + 100)}},
		})
	}
	traces = append(traces, many)
	g := BuildSDG(traces, nil, Options{})
	before := len(g.NodesOfKind(graph.KindDataset))
	collapsed, err := CollapseDatasets(g, 10)
	if err != nil {
		t.Fatal(err)
	}
	after := len(collapsed.NodesOfKind(graph.KindDataset))
	if after >= before {
		t.Fatalf("collapse had no effect: %d -> %d", before, after)
	}
	// The aggregate node exists and carries the label with the count.
	var found bool
	for _, n := range collapsed.NodesOfKind(graph.KindDataset) {
		if strings.Contains(n.ID, "<aggregated>") {
			found = true
			if !strings.Contains(n.Label, "40 datasets") {
				t.Errorf("aggregate label = %q", n.Label)
			}
		}
	}
	if !found {
		t.Error("aggregate node missing")
	}
	// Graph below threshold passes through unchanged.
	small := BuildSDG(fixtureTraces(), nil, Options{})
	if same, err := CollapseDatasets(small, 10); err != nil || same != small {
		t.Errorf("small graph should pass through (err=%v)", err)
	}
}

func TestSummarize(t *testing.T) {
	g := BuildSDG(fixtureTraces(), fixtureManifest(), Options{IncludeRegions: true, PageSize: 1024})
	s := Summarize(g)
	if s.Tasks != 3 || s.Files != 2 || s.Datasets != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.Regions == 0 || s.Edges == 0 || s.Volume == 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRendersDoNotPanic(t *testing.T) {
	g := BuildSDG(fixtureTraces(), fixtureManifest(), Options{IncludeRegions: true, IncludeFileMetadata: true})
	if len(g.DOT()) == 0 || len(g.SVG()) == 0 || len(g.HTML()) == 0 {
		t.Error("empty render output")
	}
}
