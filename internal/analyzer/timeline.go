package analyzer

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"dayu/internal/trace"
	"dayu/internal/units"
)

// Timeline is the time-ordered view of a workflow the paper's SDG
// layout encodes (nodes arranged by event start and end time): task
// execution intervals and, within each task, the lifetime of every file
// it held open.
type Timeline struct {
	// Start and End bound the whole workflow in wall-clock nanoseconds.
	Start, End int64
	Tasks      []TimelineTask
}

// TimelineTask is one task's interval plus its file lifetimes.
type TimelineTask struct {
	Name       string
	Start, End int64
	Files      []TimelineSpan
}

// TimelineSpan is one file's open-close window within a task.
type TimelineSpan struct {
	Name       string
	Start, End int64
	Bytes      int64
}

// BuildTimeline derives the time-ordered view from task traces.
func BuildTimeline(traces []*trace.TaskTrace, m *trace.Manifest) *Timeline {
	ordered := OrderTasks(traces, m)
	tl := &Timeline{}
	for _, t := range ordered {
		tt := TimelineTask{Name: t.Task, Start: t.StartNS, End: t.EndNS}
		for _, fr := range t.Files {
			tt.Files = append(tt.Files, TimelineSpan{
				Name: fr.File, Start: fr.OpenNS, End: fr.CloseNS,
				Bytes: fr.BytesRead + fr.BytesWritten,
			})
		}
		sort.Slice(tt.Files, func(i, j int) bool { return tt.Files[i].Start < tt.Files[j].Start })
		tl.Tasks = append(tl.Tasks, tt)
		if tl.Start == 0 || t.StartNS < tl.Start {
			tl.Start = t.StartNS
		}
		if t.EndNS > tl.End {
			tl.End = t.EndNS
		}
	}
	return tl
}

// Duration returns the workflow's wall-clock span.
func (tl *Timeline) Duration() int64 { return tl.End - tl.Start }

// Text renders a fixed-width Gantt chart: one row per task, '=' for the
// task interval, file rows indented beneath.
func (tl *Timeline) Text(width int) string {
	if width <= 0 {
		width = 72
	}
	span := tl.Duration()
	if span <= 0 {
		span = 1
	}
	pos := func(ns int64) int {
		p := int(float64(ns-tl.Start) / float64(span) * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	bar := func(start, end int64, fill byte) string {
		row := []byte(strings.Repeat(" ", width))
		a, b := pos(start), pos(end)
		for i := a; i <= b; i++ {
			row[i] = fill
		}
		return string(row)
	}
	nameW := 10
	for _, t := range tl.Tasks {
		if len(t.Name) > nameW {
			nameW = len(t.Name)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-*s |%s|\n", nameW, "timeline",
		strings.Repeat("-", width))
	for _, t := range tl.Tasks {
		fmt.Fprintf(&sb, "%-*s |%s|\n", nameW, t.Name, bar(t.Start, t.End, '='))
		for _, f := range t.Files {
			label := "  " + f.Name
			if len(label) > nameW {
				label = label[:nameW]
			}
			fmt.Fprintf(&sb, "%-*s |%s| %s\n", nameW, label,
				bar(f.Start, f.End, '.'), units.Bytes(f.Bytes))
		}
	}
	return sb.String()
}

// HTML renders the timeline as a standalone page with proportional bars.
func (tl *Timeline) HTML() string {
	span := tl.Duration()
	if span <= 0 {
		span = 1
	}
	pct := func(ns int64) float64 { return 100 * float64(ns-tl.Start) / float64(span) }
	var sb strings.Builder
	sb.WriteString(`<!DOCTYPE html><html><head><meta charset="utf-8"><title>workflow timeline</title><style>
body { font-family: Helvetica, sans-serif; margin: 2em; }
.row { position: relative; height: 22px; margin: 2px 0; background: #f4f4f4; }
.bar { position: absolute; height: 100%; border-radius: 3px; }
.task { background: #d62728; }
.file { background: #1f77b4; opacity: .6; }
.label { font-size: 12px; line-height: 22px; padding-left: 4px; position: absolute; white-space: nowrap; }
</style></head><body><h1>Workflow timeline</h1>
`)
	for _, t := range tl.Tasks {
		fmt.Fprintf(&sb, `<div class="row"><div class="bar task" style="left:%.2f%%;width:%.2f%%"></div><span class="label">%s</span></div>`+"\n",
			pct(t.Start), pct(t.End)-pct(t.Start)+0.5, html.EscapeString(t.Name))
		for _, f := range t.Files {
			fmt.Fprintf(&sb, `<div class="row"><div class="bar file" style="left:%.2f%%;width:%.2f%%"></div><span class="label">· %s (%s)</span></div>`+"\n",
				pct(f.Start), pct(f.End)-pct(f.Start)+0.5,
				html.EscapeString(f.Name), units.Bytes(f.Bytes))
		}
	}
	sb.WriteString("</body></html>\n")
	return sb.String()
}
