package analyzer

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"dayu/internal/trace"
)

// timeAggTraces builds n tasks spread across two well-separated launch
// windows so a 1000ns window yields two buckets.
func timeAggTraces(n int) []*trace.TaskTrace {
	var out []*trace.TaskTrace
	for i := 0; i < n; i++ {
		start := int64(1000 + 100*i)
		if i >= n/2 {
			start += 50_000 // second window
		}
		task := fmt.Sprintf("task_%02d", i)
		out = append(out, &trace.TaskTrace{
			Task: task, StartNS: start, EndNS: start + 500,
			Files: []trace.FileRecord{{
				Task: task, File: fmt.Sprintf("f_%02d.h5", i),
				OpenNS: start + 10, CloseNS: start + 400,
				BytesWritten: 4096, Writes: 1, DataOps: 1, Ops: 1,
			}},
		})
	}
	return out
}

func graphJSON(t *testing.T, g interface{}) []byte {
	t.Helper()
	b, err := json.MarshalIndent(g, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestTimeAggCacheByteIdentity is the contract test: whatever the
// mutation between snapshots, the cached aggregation must serialize to
// the exact bytes a direct AggregateByTime produces.
func TestTimeAggCacheByteIdentity(t *testing.T) {
	cache := NewTimeAggCache(0)
	traces := timeAggTraces(6)
	step := 0
	check := func(label string) {
		t.Helper()
		step++
		g := BuildFTG(traces, nil)
		for _, window := range []int64{1000, 500, 100_000} {
			got, err := cache.Aggregate(g, "ftg", fmt.Sprintf("snap-%d", step), window)
			if err != nil {
				t.Fatalf("%s window %d: %v", label, window, err)
			}
			want, err := AggregateByTime(g, window)
			if err != nil {
				t.Fatal(err)
			}
			if string(graphJSON(t, got)) != string(graphJSON(t, want)) {
				t.Errorf("%s window %d: cached aggregation diverged from AggregateByTime", label, window)
			}
		}
	}

	check("initial")
	traces[1].Files[0].BytesWritten += 8192 // change one task in bucket 0
	check("volume change")
	traces = append(traces, timeAggTraces(8)[7]) // add a task to bucket 1
	check("task added")
	traces = traces[1:] // drop a task (shifts minStart)
	check("task removed")
	traces[0].StartNS += 60_000 // move a task across buckets
	check("task moved")
}

// TestTimeAggCacheReuse pins the cache's positive paths: a same-
// snapshot repeat is a pure hit, and a NEW snapshot whose windowed
// inputs are unchanged (a rebuilt but identical graph) reuses the
// built output without rebuilding.
func TestTimeAggCacheReuse(t *testing.T) {
	cache := NewTimeAggCache(0)
	traces := timeAggTraces(6)

	g1 := BuildFTG(traces, nil)
	out1, err := cache.Aggregate(g1, "ftg", "snap-1", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Misses != 1 || s.Hits != 0 {
		t.Fatalf("after first call stats = %+v", s)
	}

	// Same snapshot id: no hashing, same graph back.
	again, err := cache.Aggregate(g1, "ftg", "snap-1", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if again != out1 {
		t.Error("same-snapshot repeat rebuilt the graph")
	}
	if s := cache.Stats(); s.Hits != 1 {
		t.Fatalf("same-snapshot repeat not a hit: %+v", s)
	}

	// A new snapshot with identical content (fresh pointers): the
	// fingerprints prove every bucket unchanged and the output is
	// reused wholesale.
	g2 := BuildFTG(traces, nil)
	out2, err := cache.Aggregate(g2, "ftg", "snap-2", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if out2 != out1 {
		t.Error("unchanged snapshot rebuilt the windowed graph")
	}
	s := cache.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.BucketsReused == 0 {
		t.Fatalf("after unchanged snapshot stats = %+v", s)
	}

	// A change confined to the second launch window: rebuild, but the
	// first window's bucket fingerprint still matches.
	traces[len(traces)-1].Files[0].BytesWritten *= 2
	g3 := BuildFTG(traces, nil)
	out3, err := cache.Aggregate(g3, "ftg", "snap-3", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if out3 == out1 {
		t.Error("changed snapshot returned the stale graph")
	}
	s2 := cache.Stats()
	if s2.Misses != 2 {
		t.Fatalf("changed snapshot not a miss: %+v", s2)
	}
	if s2.BucketsReused <= s.BucketsReused || s2.BucketsRebuilt == 0 {
		t.Fatalf("partial-change accounting wrong: %+v -> %+v", s, s2)
	}

	// Streams are independent: the same window under another stream
	// key must not collide.
	if _, err := cache.Aggregate(g3, "sdg", "snap-3", 1000); err != nil {
		t.Fatal(err)
	}
	if s3 := cache.Stats(); s3.Misses != 3 {
		t.Fatalf("stream namespace collided: %+v", s3)
	}
}

// TestTimeAggCacheBounds pins the LRU bound and the error contract.
func TestTimeAggCacheBounds(t *testing.T) {
	cache := NewTimeAggCache(2)
	g := BuildFTG(timeAggTraces(4), nil)
	for _, w := range []int64{100, 200, 300, 400} {
		if _, err := cache.Aggregate(g, "ftg", "snap-1", w); err != nil {
			t.Fatal(err)
		}
	}
	cache.mu.Lock()
	n := len(cache.entries)
	cache.mu.Unlock()
	if n != 2 {
		t.Fatalf("cache holds %d entries, want 2 (LRU bound)", n)
	}
	// The most recent windows survived.
	if _, err := cache.Aggregate(g, "ftg", "snap-1", 400); err != nil {
		t.Fatal(err)
	}
	if s := cache.Stats(); s.Hits != 1 {
		t.Fatalf("most-recent window evicted: %+v", s)
	}

	for _, w := range []int64{0, -5} {
		if _, err := cache.Aggregate(g, "ftg", "snap-1", w); !errors.Is(err, ErrNonPositiveWindow) {
			t.Errorf("window %d: err = %v, want ErrNonPositiveWindow", w, err)
		}
	}
}
