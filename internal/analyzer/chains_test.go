package analyzer

import (
	"strings"
	"testing"

	"dayu/internal/trace"
)

func chainRecord(file string, reads, writes int64) trace.FileRecord {
	fr := trace.FileRecord{File: file, Reads: reads, Writes: writes,
		BytesRead: reads * 100, BytesWritten: writes * 100,
		DataReads: reads, DataWrites: writes, DataOps: reads + writes}
	fr.Ops = fr.DataOps
	return fr
}

func chainTrace(task string, start int64, files ...trace.FileRecord) *trace.TaskTrace {
	for i := range files {
		files[i].Task = task
	}
	return &trace.TaskTrace{Task: task, StartNS: start, EndNS: start + 10, Files: files}
}

func TestDependencyChainsLinear(t *testing.T) {
	traces := []*trace.TaskTrace{
		chainTrace("t1", 0, chainRecord("a", 0, 1)),
		chainTrace("t2", 10, chainRecord("a", 1, 0), chainRecord("b", 0, 1)),
		chainTrace("t3", 20, chainRecord("b", 1, 0)),
	}
	chains := DependencyChains(traces, nil)
	if len(chains) != 1 {
		t.Fatalf("chains = %d: %v", len(chains), chains)
	}
	want := "t1 -[a]-> t2 -[b]-> t3"
	if got := chains[0].String(); got != want {
		t.Errorf("chain = %q, want %q", got, want)
	}
	if chains[0].Len() != 2 {
		t.Errorf("len = %d", chains[0].Len())
	}
	if chains[0].Hops[0].Bytes != 100 {
		t.Errorf("hop bytes = %d", chains[0].Hops[0].Bytes)
	}
}

func TestDependencyChainsFanOut(t *testing.T) {
	// t1 writes a; t2 and t3 both read it; t3 writes b read by t4.
	traces := []*trace.TaskTrace{
		chainTrace("t1", 0, chainRecord("a", 0, 1)),
		chainTrace("t2", 10, chainRecord("a", 1, 0)),
		chainTrace("t3", 20, chainRecord("a", 1, 0), chainRecord("b", 0, 1)),
		chainTrace("t4", 30, chainRecord("b", 1, 0)),
	}
	chains := DependencyChains(traces, nil)
	if len(chains) != 2 {
		t.Fatalf("chains = %v", chains)
	}
	var strs []string
	for _, c := range chains {
		strs = append(strs, c.String())
	}
	joined := strings.Join(strs, "; ")
	if !strings.Contains(joined, "t1 -[a]-> t2") {
		t.Errorf("missing short branch: %s", joined)
	}
	if !strings.Contains(joined, "t1 -[a]-> t3 -[b]-> t4") {
		t.Errorf("missing long branch: %s", joined)
	}
	longest := LongestChain(chains)
	if longest.Len() != 2 || longest.Hops[1].Consumer != "t4" {
		t.Errorf("longest = %v", longest)
	}
}

func TestDependencyChainsIgnoreCyclesAndInputs(t *testing.T) {
	// t1 writes a; t2 reads AND rewrites a (write-after-read); t1 also
	// reads a pure input that must not create a hop.
	traces := []*trace.TaskTrace{
		chainTrace("t1", 0, chainRecord("input", 1, 0), chainRecord("a", 0, 1)),
		chainTrace("t2", 10, chainRecord("a", 1, 1)),
	}
	chains := DependencyChains(traces, nil)
	if len(chains) != 1 {
		t.Fatalf("chains = %v", chains)
	}
	if got := chains[0].String(); got != "t1 -[a]-> t2" {
		t.Errorf("chain = %q", got)
	}
	// Self-reads of a task's own output never form a hop.
	self := []*trace.TaskTrace{
		chainTrace("solo", 0, chainRecord("own", 1, 1)),
	}
	if got := DependencyChains(self, nil); len(got) != 0 {
		t.Errorf("self chain: %v", got)
	}
	// No dependencies at all.
	if got := DependencyChains(nil, nil); len(got) != 0 {
		t.Errorf("empty chains: %v", got)
	}
	if LongestChain(nil).Len() != 0 {
		t.Error("LongestChain(nil) not empty")
	}
}
