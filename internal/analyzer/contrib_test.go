package analyzer

import (
	"fmt"
	"reflect"
	"testing"

	"dayu/internal/trace"
)

// The exported contribution hooks must reproduce the batch builders
// byte for byte, and cached contributions must be reusable: merging the
// same contribution slice twice yields identical graphs both times.
func TestContributionHooksMatchBatchBuild(t *testing.T) {
	traces, m := syntheticTraces(60)
	opts := Options{IncludeRegions: true, IncludeFileMetadata: true}

	ordered := OrderTasks(traces, m)
	descs := BuildObjectDescs(ordered)
	ftgContribs := make([]Contribution, len(ordered))
	sdgContribs := make([]Contribution, len(ordered))
	for i, tr := range ordered {
		ftgContribs[i] = FTGContribution(tr)
		sdgContribs[i] = SDGContribution(tr, descs, opts)
	}

	wantFTG := renderAll(t, BuildFTG(traces, m))
	wantSDG := renderAll(t, BuildSDG(traces, m, opts))
	for rep := 0; rep < 2; rep++ {
		if got := renderAll(t, BuildFTGFromContributions(ftgContribs)); !reflect.DeepEqual(got, wantFTG) {
			t.Fatalf("rep %d: FTG from contributions differs from batch build", rep)
		}
		if got := renderAll(t, BuildSDGFromContributions(sdgContribs)); !reflect.DeepEqual(got, wantSDG) {
			t.Fatalf("rep %d: SDG from contributions differs from batch build", rep)
		}
	}
}

// Swapping one task's contribution for a recomputed one (the other
// contributions untouched, as the serve cache does) must equal a full
// rebuild over the mutated trace set.
func TestContributionSwapMatchesFullRebuild(t *testing.T) {
	traces, m := syntheticTraces(30)
	ordered := OrderTasks(traces, m)
	contribs := make([]Contribution, len(ordered))
	for i, tr := range ordered {
		contribs[i] = FTGContribution(tr)
	}
	// Render once so any aliasing bug from the first merge would
	// surface in the rebuild below.
	_ = renderAll(t, BuildFTGFromContributions(contribs))

	// Mutate task 7: double its write volume.
	mut := *ordered[7]
	mut.Files = append([]trace.FileRecord(nil), ordered[7].Files...)
	mut.Files[1].BytesWritten *= 2
	ordered[7] = &mut
	contribs[7] = FTGContribution(&mut)

	want := renderAll(t, BuildFTGOpts(ordered, m, Options{}))
	got := renderAll(t, BuildFTGFromContributions(contribs))
	if !reflect.DeepEqual(got, want) {
		t.Fatal("incremental contribution swap differs from full rebuild")
	}
}

func TestObjectDescsFingerprint(t *testing.T) {
	traces, _ := syntheticTraces(12)
	descs := BuildObjectDescs(traces)
	tr := traces[0]

	fp1 := descs.Fingerprint(tr)
	fp2 := descs.Fingerprint(tr)
	if fp1 != fp2 {
		t.Fatal("fingerprint not deterministic")
	}

	clone := func() ObjectDescs {
		out := ObjectDescs{}
		for k, v := range descs {
			out[k] = v
		}
		return out
	}

	// Mutating a description the task references changes its
	// fingerprint; an unrelated key does not.
	if len(tr.Mapped) == 0 {
		t.Fatal("synthetic trace has no mapped stats")
	}
	k := ObjectKey{tr.Mapped[0].File, tr.Mapped[0].Object}
	mutated := clone()
	d := mutated[k]
	d.Datatype = "H5T_MUTATED"
	mutated[k] = d
	if mutated.Fingerprint(tr) == fp1 {
		t.Fatal("fingerprint ignored a referenced description change")
	}

	unrelated := clone()
	unrelated[ObjectKey{"no-such-file.h5", "no-such-object"}] = trace.ObjectRecord{
		Task: "x", File: "no-such-file.h5", Object: "no-such-object",
	}
	if unrelated.Fingerprint(tr) != fp1 {
		t.Fatal("fingerprint changed on an unreferenced description")
	}

	// Deleting a referenced description (present -> absent) must also
	// move the fingerprint.
	deleted := clone()
	delete(deleted, k)
	if _, ok := descs[k]; ok {
		if deleted.Fingerprint(tr) == fp1 {
			t.Fatal("fingerprint ignored a deleted referenced description")
		}
	}

	// Distinct tasks referencing distinct objects fingerprint apart.
	if other := traces[5]; descs.Fingerprint(other) == fp1 {
		t.Fatalf("tasks %s and %s share a descs fingerprint", tr.Task, fmt.Sprint(other.Task))
	}
}
