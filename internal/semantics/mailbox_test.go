package semantics

import (
	"sync"
	"testing"
)

func TestMailboxEnterExit(t *testing.T) {
	mb := NewMailbox()
	if mb.Current() != (Context{}) {
		t.Fatal("fresh mailbox not empty")
	}
	exit := mb.Enter(Context{Object: "/g/ds", File: "a.h5", Task: "t1"})
	if cur := mb.Current(); cur.Object != "/g/ds" || cur.File != "a.h5" || cur.Task != "t1" {
		t.Fatalf("Current() = %+v", cur)
	}
	exit()
	if mb.Current() != (Context{}) {
		t.Fatal("exit did not restore empty context")
	}
}

func TestMailboxNesting(t *testing.T) {
	mb := NewMailbox()
	exitOuter := mb.Enter(Context{Object: "/outer"})
	exitInner := mb.Enter(Context{Object: "/outer/attr"})
	if mb.Current().Object != "/outer/attr" {
		t.Fatal("inner context not active")
	}
	exitInner()
	if mb.Current().Object != "/outer" {
		t.Fatal("outer context not restored")
	}
	exitOuter()
	if mb.Current().Object != NoObject {
		t.Fatal("context not cleared")
	}
}

func TestMailboxExitUnderflow(t *testing.T) {
	mb := NewMailbox()
	exit := mb.Enter(Context{Object: "/x"})
	exit()
	exit() // double exit must not panic and must leave context empty
	if mb.Current() != (Context{}) {
		t.Fatal("double exit corrupted context")
	}
}

func TestMailboxSetTask(t *testing.T) {
	mb := NewMailbox()
	mb.SetTask("stage1")
	if mb.Current().Task != "stage1" {
		t.Fatal("SetTask lost")
	}
	exit := mb.Enter(Context{Object: "/d", Task: "stage1"})
	mb.SetTask("stage2")
	if mb.Current().Task != "stage2" {
		t.Fatal("SetTask inside Enter lost")
	}
	exit()
}

func TestMailboxConcurrency(t *testing.T) {
	// The mailbox must be race-free under concurrent stamping; run with
	// -race in CI to check.
	mb := NewMailbox()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				exit := mb.Enter(Context{Object: "/d"})
				_ = mb.Current()
				exit()
			}
		}()
	}
	wg.Wait()
}
