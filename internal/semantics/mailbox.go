// Package semantics implements the join channel between DaYu's two
// profiling layers. In the paper the VOL and VFD plugins are separate
// HDF5 plugins that cannot call each other, so DaYu passes the "current
// data object" through a shared-memory segment; here the same contract
// is an in-process mailbox the object layer stamps before issuing I/O
// and the file-driver profiler reads when recording each operation.
package semantics

import "sync"

// NoObject is recorded when I/O happens outside any data-object access,
// e.g. superblock writes during file open.
const NoObject = ""

// Context describes the data object on whose behalf I/O is currently
// being issued.
type Context struct {
	// Object is the full object name, e.g. "/group/dataset".
	Object string
	// File is the file name the object belongs to.
	File string
	// Task is the workflow task currently executing.
	Task string
}

// Mailbox carries the current-object context from the object layer (VOL)
// to the file-driver layer (VFD). It is safe for concurrent use; each
// simulated process owns one mailbox, mirroring the per-process shared
// memory segment in the paper.
type Mailbox struct {
	mu  sync.Mutex
	ctx Context
	// depth tracks nested object stamps so an attribute read inside a
	// dataset access restores the outer dataset context on exit.
	stack []Context
}

// NewMailbox returns an empty mailbox.
func NewMailbox() *Mailbox { return &Mailbox{} }

// Enter pushes ctx as the current object context and returns a function
// that restores the previous context. Typical use:
//
//	defer mb.Enter(semantics.Context{Object: name, File: f, Task: t})()
func (m *Mailbox) Enter(ctx Context) func() {
	m.mu.Lock()
	m.stack = append(m.stack, m.ctx)
	m.ctx = ctx
	m.mu.Unlock()
	return m.exit
}

func (m *Mailbox) exit() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n := len(m.stack); n > 0 {
		m.ctx = m.stack[n-1]
		m.stack = m.stack[:n-1]
	} else {
		m.ctx = Context{}
	}
}

// Current returns the context of the object currently performing I/O.
func (m *Mailbox) Current() Context {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ctx
}

// SetTask updates only the task field of the current context; the
// workflow launcher calls this when a task starts (the paper notes the
// launcher must inform DaYu of the current task).
func (m *Mailbox) SetTask(task string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ctx.Task = task
}
