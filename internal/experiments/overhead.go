package experiments

import (
	"fmt"
	"time"

	"dayu/internal/tracer"
	"dayu/internal/units"
	"dayu/internal/workloads"
	"os"
)

// The Figure 9/10 overhead experiments measure the real Data Semantic
// Mapper. Scales are reduced from the paper's testbed (80 GB files
// become tens of MiB) because the substrate is in-memory; the reported
// shapes - overhead decreasing with file size and process count,
// worst-case overhead growing with object-access frequency, VOL storage
// flat vs VFD storage linear - are the reproduction targets.

// minDuration runs fn reps times and returns the fastest run.
func minDuration(reps int, fn func() (time.Duration, error)) (time.Duration, error) {
	var best time.Duration
	for i := 0; i < reps; i++ {
		d, err := fn()
		if err != nil {
			return 0, err
		}
		if best == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// overheadPercent computes the tracer overhead of traced vs untraced,
// clamped at zero (timing noise can make tiny traced runs faster).
func overheadPercent(untraced, traced time.Duration) float64 {
	if untraced <= 0 || traced <= untraced {
		return 0
	}
	return 100 * float64(traced-untraced) / float64(untraced)
}

// h5benchOverheads measures VFD-only and VOL-only overhead for a config.
func h5benchOverheads(cfg workloads.H5benchConfig, reps int) (vfdPct, volPct float64, err error) {
	base, err := minDuration(reps, func() (time.Duration, error) {
		d, _, err := workloads.RunH5bench(cfg, nil)
		return d, err
	})
	if err != nil {
		return 0, 0, err
	}
	vfd, err := minDuration(reps, func() (time.Duration, error) {
		d, _, err := workloads.RunH5bench(cfg, tracer.New(tracer.Config{DisableVOL: true}))
		return d, err
	})
	if err != nil {
		return 0, 0, err
	}
	vol, err := minDuration(reps, func() (time.Duration, error) {
		d, _, err := workloads.RunH5bench(cfg, tracer.New(tracer.Config{DisableVFD: true}))
		return d, err
	})
	if err != nil {
		return 0, 0, err
	}
	return overheadPercent(base, vfd), overheadPercent(base, vol), nil
}

// Fig9a: h5bench overhead vs total file size.
func Fig9a(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	sizes := []int64{8 << 20, 16 << 20, 32 << 20, 64 << 20}
	if opts.Quick {
		sizes = []int64{1 << 20, 2 << 20, 4 << 20}
	}
	t := &Table{ID: "fig9a", Title: "Data Semantic Mapper overhead vs file size (h5bench)",
		Header: []string{"file size", "VFD overhead %", "VOL overhead %"}}
	var first, last float64
	for i, size := range sizes {
		vfdPct, volPct, err := h5benchOverheads(workloads.H5benchConfig{
			Procs: 1, BytesPerProc: size, IOSize: 256 << 10,
		}, opts.Reps)
		if err != nil {
			return nil, err
		}
		t.AddRow(units.Bytes(size), fmt.Sprintf("%.3f", vfdPct), fmt.Sprintf("%.3f", volPct))
		if i == 0 {
			first = vfdPct + volPct
		}
		last = vfdPct + volPct
	}
	t.AddNote("paper: overhead stays below 0.23%% and decreases with file size (fixed per-object cost amortized over larger transfers)")
	if last <= first {
		t.AddNote("reproduced: overhead decreases (or stays flat) as file size grows")
	} else {
		t.AddNote("WARNING: overhead did not decrease with file size this run (wall-clock noise)")
	}
	return t, nil
}

// Fig9b: h5bench overhead vs process count at fixed volume per process.
func Fig9b(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	procs := []int{1, 2, 4, 8}
	per := int64(4 << 20)
	if opts.Quick {
		procs = []int{1, 2, 4}
		per = 1 << 20
	}
	t := &Table{ID: "fig9b", Title: "Data Semantic Mapper overhead vs process count (h5bench)",
		Header: []string{"processes", "VFD overhead %", "VOL overhead %"}}
	for _, p := range procs {
		vfdPct, volPct, err := h5benchOverheads(workloads.H5benchConfig{
			Procs: p, BytesPerProc: per, IOSize: 256 << 10,
		}, opts.Reps)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(p), fmt.Sprintf("%.3f", vfdPct), fmt.Sprintf("%.3f", volPct))
	}
	t.AddNote("paper: overhead below 0.16%% and decreasing with process count (per-process profiler state, fixed 1 GB/process)")
	return t, nil
}

// Fig9c: corner-case overhead vs dataset read-operation count.
func Fig9c(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	ops := []int{1000, 2000, 4000, 8000}
	if opts.Quick {
		ops = []int{500, 1000, 2000}
	}
	t := &Table{ID: "fig9c", Title: "Worst-case overhead vs dataset I/O count (200 datasets, small file)",
		Header: []string{"dataset I/O ops", "VFD overhead %", "VOL overhead %"}}
	for _, n := range ops {
		cfg := workloads.CornerCaseConfig{ReadOps: n}
		base, err := minDuration(opts.Reps, func() (time.Duration, error) {
			d, _, err := workloads.RunCornerCase(cfg, nil)
			return d, err
		})
		if err != nil {
			return nil, err
		}
		vfd, err := minDuration(opts.Reps, func() (time.Duration, error) {
			d, _, err := workloads.RunCornerCase(cfg, tracer.New(tracer.Config{DisableVOL: true, IOTrace: true}))
			return d, err
		})
		if err != nil {
			return nil, err
		}
		vol, err := minDuration(opts.Reps, func() (time.Duration, error) {
			d, _, err := workloads.RunCornerCase(cfg, tracer.New(tracer.Config{DisableVFD: true}))
			return d, err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(n), fmt.Sprintf("%.2f", overheadPercent(base, vfd)),
			fmt.Sprintf("%.2f", overheadPercent(base, vol)))
	}
	t.AddNote("paper: worst-case runtime overhead grows with I/O activity within a file's open/close period, reaching ~4%% (2.97%% VFD + 1.0%% VOL)")
	return t, nil
}

// Fig9d: trace storage overhead vs program data volume.
func Fig9d(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	ops := []int{1000, 2000, 4000, 8000}
	if opts.Quick {
		ops = []int{500, 1000, 2000}
	}
	t := &Table{ID: "fig9d", Title: "Trace storage overhead vs I/O operations",
		Header: []string{"I/O ops", "VFD trace", "VFD storage %", "VOL trace", "VOL storage %"}}
	var volSizes []int64
	var vfdSizes []int64
	for _, n := range ops {
		cfg := workloads.CornerCaseConfig{ReadOps: n, DatasetBytes: 128 << 10}
		programBytes := int64(200) * (128 << 10)
		_, vfdTrace, err := workloads.RunCornerCase(cfg, tracer.New(tracer.Config{DisableVOL: true, IOTrace: true}))
		if err != nil {
			return nil, err
		}
		vfdSize, err := vfdTrace.EncodedSize()
		if err != nil {
			return nil, err
		}
		_, volTrace, err := workloads.RunCornerCase(cfg, tracer.New(tracer.Config{DisableVFD: true}))
		if err != nil {
			return nil, err
		}
		volSize, err := volTrace.EncodedSize()
		if err != nil {
			return nil, err
		}
		vfdSizes = append(vfdSizes, vfdSize)
		volSizes = append(volSizes, volSize)
		t.AddRow(fmt.Sprint(n),
			units.Bytes(vfdSize), units.Percent(float64(vfdSize), float64(programBytes)),
			units.Bytes(volSize), units.Percent(float64(volSize), float64(programBytes)))
	}
	// Shape checks: VOL flat, VFD linear in ops.
	volFlat := volSizes[len(volSizes)-1] < volSizes[0]*2
	vfdGrows := vfdSizes[len(vfdSizes)-1] > vfdSizes[0]*2
	if volFlat && vfdGrows {
		t.AddNote("reproduced: VOL trace storage is constant in op count; VFD time-sensitive trace grows linearly (turn off I/O tracing for constant storage)")
	} else {
		t.AddNote("WARNING: storage shape unexpected (VOL flat=%v, VFD linear=%v)", volFlat, vfdGrows)
	}
	t.AddNote("paper: VOL storage ~0.2%%, VFD linear up to ~0.35%% of the 200 MB program data (here scaled to a 25 MiB file)")
	return t, nil
}

// componentTable renders a ComponentTimes breakdown.
func componentTable(id, title string, ct tracer.ComponentTimes, appTime time.Duration) *Table {
	t := &Table{ID: id, Title: title,
		Header: []string{"component", "time", "share"}}
	p, a, m := ct.Fractions()
	t.AddRow("Input_Parser", units.Duration(ct.InputParser), units.Percent(p, 1))
	t.AddRow("Access_Tracker", units.Duration(ct.AccessTracker), units.Percent(a, 1))
	t.AddRow("Characteristic_Mapper", units.Duration(ct.CharacteristicMapper), units.Percent(m, 1))
	t.AddRow("Total", units.Duration(ct.Total()), "100%")
	if appTime > 0 {
		t.AddNote("tracer total is %s of the application's %s run (%s)",
			units.Percent(float64(ct.Total()), float64(appTime)),
			units.Duration(appTime),
			units.Duration(ct.Total()))
	}
	return t
}

// Fig10a: component breakdown under h5bench (bulk I/O).
func Fig10a(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	cfg := workloads.H5benchConfig{Procs: 16, BytesPerProc: 8 << 20, IOSize: 512 << 10}
	if opts.Quick {
		cfg = workloads.H5benchConfig{Procs: 4, BytesPerProc: 2 << 20, IOSize: 256 << 10}
	}
	cfgPath, err := writeTempConfig()
	if err != nil {
		return nil, err
	}
	tr, err := tracer.NewFromFile(cfgPath)
	if err != nil {
		return nil, err
	}
	d, _, err := workloads.RunH5bench(cfg, tr)
	if err != nil {
		return nil, err
	}
	t := componentTable("fig10a", "DaYu execution breakdown: h5bench (bulk parallel I/O)", tr.Timing(), d)
	t.AddNote("paper: h5bench shows minimal total overhead (0.008%% of execution), dominated by per-op mapper/tracker work")
	return t, nil
}

// Fig10b: component breakdown under the corner-case benchmark.
func Fig10b(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	cfg := workloads.CornerCaseConfig{ReadOps: 8000}
	if opts.Quick {
		cfg = workloads.CornerCaseConfig{ReadOps: 2000}
	}
	cfgPath, err := writeTempConfig()
	if err != nil {
		return nil, err
	}
	tr, err := tracer.NewFromFile(cfgPath)
	if err != nil {
		return nil, err
	}
	d, _, err := workloads.RunCornerCase(cfg, tr)
	if err != nil {
		return nil, err
	}
	t := componentTable("fig10b", "DaYu execution breakdown: corner-case (frequent object access)", tr.Timing(), d)
	t.AddNote("paper: the corner case shifts cost toward the Access Tracker, which records every data-object access (~4%% total overhead)")
	return t, nil
}

// writeTempConfig creates a real config file so the Input Parser
// component does measurable work, as in the paper's breakdown.
func writeTempConfig() (string, error) {
	f, err := os.CreateTemp("", "dayu-config-*.json")
	if err != nil {
		return "", err
	}
	defer f.Close()
	if _, err := f.WriteString(`{"page_size": 4096}`); err != nil {
		return "", err
	}
	return f.Name(), nil
}
