// Package experiments regenerates every table and figure of the paper's
// evaluation (§VI and §VII). Each experiment returns a Table with the
// same rows/series the paper reports, plus rendered graph artifacts for
// the workflow figures. Overhead experiments (Figure 9, 10) measure the
// real tracer against in-memory drivers; performance experiments
// (Figures 11-13) replay traced operation streams on the simulated
// Table III machines, so shapes (who wins, by what factor) are
// reproduced rather than the authors' absolute testbed numbers.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Table is one experiment's regenerated output.
type Table struct {
	// ID matches the paper artifact, e.g. "fig9a", "table3".
	ID string
	// Title describes the experiment.
	Title string
	// Header names the columns.
	Header []string
	// Rows are the data rows, formatted as strings.
	Rows [][]string
	// Notes records observations the paper calls out (and whether this
	// run reproduced them).
	Notes []string
	// Artifacts maps file names to rendered content (DOT/SVG/HTML/JSON)
	// for graph figures.
	Artifacts map[string]string
}

// AddRow appends a data row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends an observation note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// AddArtifact registers a rendered artifact.
func (t *Table) AddArtifact(name, content string) {
	if t.Artifacts == nil {
		t.Artifacts = map[string]string{}
	}
	t.Artifacts[name] = content
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad+2))
			}
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if len(t.Artifacts) > 0 {
		names := make([]string, 0, len(t.Artifacts))
		for n := range t.Artifacts {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "artifacts: %s\n", strings.Join(names, ", "))
	}
	return b.String()
}

// WriteArtifacts saves the table's artifacts under dir, returning the
// written paths.
func (t *Table) WriteArtifacts(dir string) ([]string, error) {
	if len(t.Artifacts) == 0 {
		return nil, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	names := make([]string, 0, len(t.Artifacts))
	for n := range t.Artifacts {
		names = append(names, n)
	}
	sort.Strings(names)
	var paths []string
	for _, n := range names {
		p := filepath.Join(dir, n)
		if err := os.WriteFile(p, []byte(t.Artifacts[n]), 0o644); err != nil {
			return nil, fmt.Errorf("experiments: write %s: %w", p, err)
		}
		paths = append(paths, p)
	}
	return paths, nil
}

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks workloads for fast CI runs; the full configuration
	// matches EXPERIMENTS.md.
	Quick bool
	// Reps is the repetition count for wall-clock overhead
	// measurements (minimum is taken); default 3.
	Reps int
}

func (o Options) withDefaults() Options {
	if o.Reps == 0 {
		o.Reps = 3
	}
	return o
}

// Runner is an experiment entry point.
type Runner func(Options) (*Table, error)

// Registry maps experiment IDs to runners, in paper order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"table1", Table1},
		{"table2", Table2},
		{"table3", Table3},
		{"fig3", Fig3},
		{"fig4", Fig4},
		{"fig5", Fig5},
		{"fig6", Fig6},
		{"fig7", Fig7},
		{"fig8", Fig8},
		{"fig9a", Fig9a},
		{"fig9b", Fig9b},
		{"fig9c", Fig9c},
		{"fig9d", Fig9d},
		{"fig10a", Fig10a},
		{"fig10b", Fig10b},
		{"fig11", Fig11},
		{"fig12", Fig12},
		{"fig13a", Fig13a},
		{"fig13b", Fig13b},
		{"fig13c", Fig13c},
		{"resilience", Resilience},
	}
}

// Lookup finds a runner by ID.
func Lookup(id string) (Runner, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

func fmtSpeedup(base, opt float64) string {
	if opt <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", base/opt)
}
