package experiments

import (
	"fmt"
	"time"

	"dayu/internal/sim"
	"dayu/internal/tracer"
	"dayu/internal/vfd"
	"dayu/internal/workflow"
	"dayu/internal/workloads"
)

// Resilience measures workflow robustness under injected storage faults:
// success rate and virtual-time cost as the per-operation fault rate
// rises, with fail-fast execution versus the self-healing retry policy.
// It extends the paper's evaluation with the failure dimension real
// deployments of these workflows face - the same traced substrate, but
// with the VFD seam injecting transient errors and torn writes.
func Resilience(opts Options) (*Table, error) {
	opts = opts.withDefaults()
	rates := []float64{0, 0.01, 0.03, 0.06}
	seeds := []int64{1, 2, 3}
	cfg := workloads.PyFlextrkrConfig{
		ParallelTasks: 3, InputFiles: 3, FeatureBytes: 32 << 10,
		Stage9Datasets: 8, Stage9Accesses: 2,
	}
	if opts.Quick {
		rates = []float64{0, 0.03}
		seeds = []int64{1, 2}
	}
	retry := &workflow.RetryPolicy{
		MaxAttempts: 8, Backoff: 5 * time.Millisecond, Reschedule: true,
	}

	type outcome struct {
		ok       bool
		total    time.Duration
		attempts int
		tasks    int
	}
	run := func(rate float64, seed int64, policy *workflow.RetryPolicy) (outcome, error) {
		spec, setup := workloads.PyFlextrkrStages3to5(cfg)
		eng, err := workflow.NewEngine(workflow.Cluster{Machine: sim.MachineCPU, Nodes: 2}, nil, tracer.Config{})
		if err != nil {
			return outcome{}, err
		}
		if err := setup(eng); err != nil {
			return outcome{}, err
		}
		eng.SetFaults(&vfd.FaultPlan{
			Seed:       seed,
			ReadError:  vfd.Uniform(rate),
			WriteError: vfd.Uniform(rate),
			TornWrite:  rate / 5,
			Latency:    time.Millisecond,
		})
		eng.SetRetry(policy)
		res, runErr := eng.Run(spec)
		o := outcome{ok: runErr == nil}
		if res != nil {
			o.total = res.Total()
			for _, tr := range res.Traces {
				o.attempts += tr.Attempts
				o.tasks++
			}
		}
		return o, nil
	}

	t := &Table{
		ID:     "resilience",
		Title:  "Fault injection: success rate and virtual-time cost vs fault rate",
		Header: []string{"fault rate", "policy", "success", "mean attempts/task", "mean time (ok runs)"},
	}
	for _, rate := range rates {
		for _, policy := range []*workflow.RetryPolicy{nil, retry} {
			name := "fail-fast"
			if policy != nil {
				name = "retry"
			}
			var okRuns, attempts, tasks int
			var okTime time.Duration
			for _, seed := range seeds {
				o, err := run(rate, seed, policy)
				if err != nil {
					return nil, fmt.Errorf("experiments: resilience rate %.2f seed %d: %w", rate, seed, err)
				}
				if o.ok {
					okRuns++
					okTime += o.total
				}
				attempts += o.attempts
				tasks += o.tasks
			}
			meanAttempts := "n/a"
			if tasks > 0 {
				meanAttempts = fmt.Sprintf("%.2f", float64(attempts)/float64(tasks))
			}
			meanTime := "n/a"
			if okRuns > 0 {
				meanTime = (okTime / time.Duration(okRuns)).Round(time.Microsecond).String()
			}
			t.AddRow(fmt.Sprintf("%.2f", rate), name,
				fmt.Sprintf("%d/%d", okRuns, len(seeds)), meanAttempts, meanTime)
		}
	}

	// Determinism spot check: the same seed must reproduce the same
	// virtual time, attempt for attempt.
	faulted := rates[len(rates)-1]
	a, err := run(faulted, seeds[0], retry)
	if err != nil {
		return nil, err
	}
	b, err := run(faulted, seeds[0], retry)
	if err != nil {
		return nil, err
	}
	if a.ok != b.ok || a.total != b.total || a.attempts != b.attempts {
		t.AddNote("DETERMINISM VIOLATION: same seed diverged (%v/%d vs %v/%d)",
			a.total, a.attempts, b.total, b.attempts)
	} else {
		t.AddNote("determinism: same seed reproduces identical virtual time (%v) and %d total attempts at rate %.2f",
			a.total, a.attempts, faulted)
	}
	t.AddNote("retry converts fault-rate failures into bounded virtual-time cost (backoff + re-executed I/O)")
	return t, nil
}
