package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// quick runs every experiment in Quick mode; individual shape tests
// below assert the paper's qualitative results.
var quick = Options{Quick: true, Reps: 1}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Registry() {
		if ids[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		ids[e.ID] = true
		if e.Run == nil {
			t.Errorf("experiment %s has no runner", e.ID)
		}
	}
	for _, want := range []string{"table1", "table2", "table3", "fig3", "fig4", "fig5",
		"fig6", "fig7", "fig8", "fig9a", "fig9b", "fig9c", "fig9d",
		"fig10a", "fig10b", "fig11", "fig12", "fig13a", "fig13b", "fig13c",
		"resilience"} {
		if !ids[want] {
			t.Errorf("experiment %s missing from registry", want)
		}
	}
	if _, ok := Lookup("fig4"); !ok {
		t.Error("Lookup failed")
	}
	if _, ok := Lookup("fig99"); ok {
		t.Error("Lookup invented an experiment")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Header: []string{"a", "b"}}
	tab.AddRow("1", "2")
	tab.AddNote("note %d", 7)
	tab.AddArtifact("g.dot", "digraph {}")
	s := tab.Format()
	for _, want := range []string{"== x: demo ==", "a  b", "1  2", "note: note 7", "artifacts: g.dot"} {
		if !strings.Contains(s, want) {
			t.Errorf("Format missing %q in:\n%s", want, s)
		}
	}
	dir := t.TempDir()
	paths, err := tab.WriteArtifacts(dir)
	if err != nil || len(paths) != 1 {
		t.Fatalf("WriteArtifacts: %v, %v", paths, err)
	}
	empty := &Table{ID: "y"}
	if paths, err := empty.WriteArtifacts(dir); err != nil || paths != nil {
		t.Error("empty artifacts misbehaved")
	}
}

// warnings counts WARNING notes.
func warnings(tab *Table) []string {
	var out []string
	for _, n := range tab.Notes {
		if strings.Contains(n, "WARNING") {
			out = append(out, n)
		}
	}
	return out
}

func TestTables1to3(t *testing.T) {
	for _, id := range []string{"table1", "table2", "table3"} {
		run, _ := Lookup(id)
		tab, err := run(quick)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) == 0 {
			t.Errorf("%s has no rows", id)
		}
	}
}

func TestFig3(t *testing.T) {
	tab, err := Fig3(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(warnings(tab)) > 0 {
		t.Errorf("fig3 warnings: %v", warnings(tab))
	}
	if tab.Artifacts["fig3_sdg.dot"] == "" || tab.Artifacts["fig3_sdg.html"] == "" {
		t.Error("fig3 artifacts missing")
	}
}

func TestFig4to7GraphFigures(t *testing.T) {
	for _, id := range []string{"fig4", "fig5", "fig6", "fig7"} {
		run, _ := Lookup(id)
		tab, err := run(quick)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if w := warnings(tab); len(w) > 0 {
			t.Errorf("%s warnings: %v", id, w)
		}
		if len(tab.Artifacts) == 0 {
			t.Errorf("%s has no artifacts", id)
		}
	}
}

func TestFig8ChunkedHalvesVLWrites(t *testing.T) {
	tab, err := Fig8(quick)
	if err != nil {
		t.Fatal(err)
	}
	if w := warnings(tab); len(w) > 0 {
		t.Errorf("fig8 warnings: %v", w)
	}
	// Both SDG variants rendered.
	if tab.Artifacts["fig8a_contiguous_sdg.svg"] == "" || tab.Artifacts["fig8b_chunked_sdg.svg"] == "" {
		t.Error("fig8 SDG artifacts missing")
	}
}

func TestFig9Overheads(t *testing.T) {
	// Wall-clock experiments: only assert they run and produce plausible
	// (bounded) percentages; shapes are asserted by dedicated notes.
	for _, id := range []string{"fig9a", "fig9b", "fig9c"} {
		run, _ := Lookup(id)
		tab, err := run(quick)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, row := range tab.Rows {
			for _, cell := range row[1:] {
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					t.Fatalf("%s: non-numeric overhead %q", id, cell)
				}
				if v < 0 || v > 400 {
					t.Errorf("%s: implausible overhead %v%%", id, v)
				}
			}
		}
	}
}

func TestFig9dStorageShape(t *testing.T) {
	tab, err := Fig9d(quick)
	if err != nil {
		t.Fatal(err)
	}
	if w := warnings(tab); len(w) > 0 {
		t.Errorf("fig9d warnings: %v", w)
	}
}

func TestFig10Breakdowns(t *testing.T) {
	for _, id := range []string{"fig10a", "fig10b"} {
		run, _ := Lookup(id)
		tab, err := run(quick)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tab.Rows) != 4 {
			t.Errorf("%s rows = %d", id, len(tab.Rows))
		}
		if tab.Rows[0][0] != "Input_Parser" || tab.Rows[3][0] != "Total" {
			t.Errorf("%s components wrong: %v", id, tab.Rows)
		}
	}
}

func TestFig11PlacementSpeedup(t *testing.T) {
	tab, err := Fig11(quick)
	if err != nil {
		t.Fatal(err)
	}
	if w := warnings(tab); len(w) > 0 {
		t.Errorf("fig11 warnings: %v", w)
	}
	// Every config's overall row must show >1x speedup.
	var overall int
	for _, row := range tab.Rows {
		if row[1] == "overall (incl. staging)" {
			overall++
			sp := parseSpeedup(t, row[4])
			if sp <= 1.0 {
				t.Errorf("fig11 %s overall speedup %.2f <= 1", row[0], sp)
			}
		}
	}
	if overall != 2 {
		t.Errorf("fig11 overall rows = %d", overall)
	}
}

func TestFig12IterationSpeedup(t *testing.T) {
	tab, err := Fig12(quick)
	if err != nil {
		t.Fatal(err)
	}
	if w := warnings(tab); len(w) > 0 {
		t.Errorf("fig12 warnings: %v", w)
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[0] != "overall" {
		t.Fatalf("fig12 last row = %v", last)
	}
	if sp := parseSpeedup(t, last[3]); sp <= 1.0 {
		t.Errorf("fig12 overall speedup %.2f <= 1", sp)
	}
}

func TestFig13aConsolidationShape(t *testing.T) {
	tab, err := Fig13a(quick)
	if err != nil {
		t.Fatal(err)
	}
	if w := warnings(tab); len(w) > 0 {
		t.Errorf("fig13a warnings: %v", w)
	}
	// Consolidation always wins, benefit shrinks with process count and
	// with dataset size (paper's two trends).
	type key struct{ size, procs string }
	sp := map[key]float64{}
	for _, row := range tab.Rows {
		sp[key{row[0], row[1]}] = parseSpeedup(t, row[4])
	}
	for k, v := range sp {
		if v <= 1.0 {
			t.Errorf("consolidation lost at %v: %.2f", k, v)
		}
	}
	if sp[key{"1.0 KiB", "1"}] <= sp[key{"8.0 KiB", "1"}] {
		t.Error("speedup should shrink with dataset size")
	}
	if sp[key{"1.0 KiB", "1"}] <= sp[key{"1.0 KiB", "4"}] {
		t.Error("speedup should shrink with process count")
	}
}

func TestFig13bContiguousWins(t *testing.T) {
	tab, err := Fig13b(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if sp := parseSpeedup(t, row[4]); sp <= 1.0 {
			t.Errorf("contiguous lost at %v: %.2f", row[:2], sp)
		}
	}
	// Speedup grows with concurrency (paper: up to 1.9x).
	var sp1, sp4 float64
	for _, row := range tab.Rows {
		if row[0] == "100.0 KiB" && row[1] == "1" {
			sp1 = parseSpeedup(t, row[4])
		}
		if row[0] == "100.0 KiB" && row[1] == "4" {
			sp4 = parseSpeedup(t, row[4])
		}
	}
	if sp4 <= sp1 {
		t.Errorf("speedup should grow with concurrency: 1p=%.2f 4p=%.2f", sp1, sp4)
	}
}

func TestFig13cChunkedVLWins(t *testing.T) {
	tab, err := Fig13c(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[1] == "Contig (Baseline)" {
			continue
		}
		if sp := parseSpeedup(t, row[4]); sp <= 1.0 {
			t.Errorf("chunked VL lost at %v: %.2f", row[:2], sp)
		}
	}
}

func TestResilienceShape(t *testing.T) {
	tab, err := Resilience(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "DETERMINISM VIOLATION") {
			t.Errorf("resilience: %s", n)
		}
	}
	// At zero fault rate both policies succeed every run; at the top rate
	// retry must out-survive fail-fast.
	success := map[[2]string]string{}
	for _, row := range tab.Rows {
		success[[2]string{row[0], row[1]}] = row[2]
	}
	runs := strings.SplitN(success[[2]string{"0.00", "fail-fast"}], "/", 2)[1]
	all := runs + "/" + runs
	if success[[2]string{"0.00", "fail-fast"}] != all || success[[2]string{"0.00", "retry"}] != all {
		t.Errorf("clean runs failed: %v", success)
	}
	top := tab.Rows[len(tab.Rows)-1]
	if top[1] != "retry" {
		t.Fatalf("unexpected row order: %v", tab.Rows)
	}
	ff := success[[2]string{top[0], "fail-fast"}]
	if ff >= top[2] { // "0/2" < "2/2" lexically matches numerically here
		t.Errorf("retry (%s) did not out-survive fail-fast (%s) at rate %s", top[2], ff, top[0])
	}
}

func parseSpeedup(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("bad speedup cell %q", s)
	}
	return v
}
