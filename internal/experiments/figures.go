package experiments

import (
	"encoding/json"
	"fmt"

	"dayu/internal/analyzer"
	"dayu/internal/diagnose"
	"dayu/internal/graph"
	"dayu/internal/hdf5"
	"dayu/internal/sim"
	"dayu/internal/trace"
	"dayu/internal/tracer"
	"dayu/internal/units"
	"dayu/internal/vfd"
	"dayu/internal/workflow"
	"dayu/internal/workloads"
)

// Table1 documents the VOL profiler's object-level semantics by
// producing a real Table I record set from a traced run.
func Table1(opts Options) (*Table, error) {
	tr := tracer.New(tracer.Config{})
	tr.BeginTask("demo_task")
	drv := tr.WrapDriver(vfd.NewMemDriver(), "demo.h5")
	f, err := hdf5.Create(drv, "demo.h5", hdf5.Config{
		Mailbox: tr.Mailbox(), Observer: tr.VOLObserver(), Task: "demo_task",
	})
	if err != nil {
		return nil, err
	}
	ds, err := f.Root().CreateDataset("temperature", hdf5.Float64, []int64{64}, nil)
	if err != nil {
		return nil, err
	}
	if err := ds.WriteAll(make([]byte, 512)); err != nil {
		return nil, err
	}
	if _, err := ds.ReadAll(); err != nil {
		return nil, err
	}
	if err := ds.Close(); err != nil {
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	tt := tr.EndTask()

	t := &Table{ID: "table1", Title: "VOL Profiler Object-Level Semantics (live records)",
		Header: []string{"task", "file", "object", "lifetime", "description", "reads", "writes"}}
	for _, o := range tt.Objects {
		desc := fmt.Sprintf("%s %v %s", o.Datatype, o.Shape, o.Layout)
		t.AddRow(o.Task, o.File, o.Object, units.Duration(o.Lifetime()), desc,
			fmt.Sprint(o.Reads), fmt.Sprint(o.Writes))
	}
	t.AddNote("all six Table I parameters are captured: task name, file name, object lifetime, description (shape/type/layout), and read/write access counts")
	return t, nil
}

// Table2 documents the VFD profiler's file-level semantics the same way.
func Table2(opts Options) (*Table, error) {
	tr := tracer.New(tracer.Config{})
	tr.BeginTask("demo_task")
	drv := tr.WrapDriver(vfd.NewMemDriver(), "demo.h5")
	f, err := hdf5.Create(drv, "demo.h5", hdf5.Config{
		Mailbox: tr.Mailbox(), Observer: tr.VOLObserver(), Task: "demo_task",
	})
	if err != nil {
		return nil, err
	}
	ds, err := f.Root().CreateDataset("grid", hdf5.Float32, []int64{4096}, nil)
	if err != nil {
		return nil, err
	}
	if err := ds.WriteAll(make([]byte, 16384)); err != nil {
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	tt := tr.EndTask()

	t := &Table{ID: "table2", Title: "VFD Profiler File-Level Semantics (live records)",
		Header: []string{"task", "file", "lifetime", "ops", "meta/data", "regions", "seq-ops"}}
	for _, fr := range tt.Files {
		t.AddRow(fr.Task, fr.File, units.Duration(fr.Lifetime()),
			fmt.Sprint(fr.Ops), fmt.Sprintf("%d/%d", fr.MetaOps, fr.DataOps),
			fmt.Sprint(len(fr.Regions)), fmt.Sprint(fr.SequentialOps))
	}
	for _, ms := range tt.Mapped {
		obj := ms.Object
		if obj == "" {
			obj = "(unattributed)"
		}
		t.AddNote("mapper attribution: %s -> %d meta + %d data ops over %d regions",
			obj, ms.MetaOps, ms.DataOps, len(ms.Regions))
	}
	return t, nil
}

// Table3 reports the simulated machine configurations.
func Table3(opts Options) (*Table, error) {
	t := &Table{ID: "table3", Title: "Machine configurations (simulated, Table III)",
		Header: []string{"machine", "compute/memory", "default storage", "node-local options"}}
	for _, m := range sim.Machines() {
		locals := ""
		for i, d := range m.Local {
			if i > 0 {
				locals += ", "
			}
			locals += d.Name
		}
		t.AddRow(m.Name, m.Notes, m.Default.Name, locals)
	}
	return t, nil
}

// graphArtifacts attaches the three render formats of a graph.
func graphArtifacts(t *Table, g *graph.Graph, baseName string) error {
	t.AddArtifact(baseName+".dot", g.DOT())
	t.AddArtifact(baseName+".svg", g.SVG())
	t.AddArtifact(baseName+".html", g.HTML())
	data, err := json.MarshalIndent(g, "", " ")
	if err != nil {
		return err
	}
	t.AddArtifact(baseName+".json", string(data))
	return nil
}

// runReplica executes a workload replica on a cluster and returns the
// result.
func runReplica(spec workflow.Spec, setup func(*workflow.Engine) error,
	cluster workflow.Cluster, plan *workflow.Plan) (*workflow.Result, error) {
	eng, err := workflow.NewEngine(cluster, plan, tracer.Config{})
	if err != nil {
		return nil, err
	}
	if err := setup(eng); err != nil {
		return nil, err
	}
	return eng.Run(spec)
}

func defaultCluster() workflow.Cluster {
	return workflow.Cluster{Machine: sim.MachineCPU, Nodes: 2}
}

// Fig3 regenerates the example single-task SDG: one task writing two
// datasets whose content maps to distinct file address regions.
func Fig3(opts Options) (*Table, error) {
	spec := workflow.Spec{
		Name: "example",
		Stages: []workflow.Stage{{Name: "write", Tasks: []workflow.Task{{
			Name: "task",
			Fn: func(tc *workflow.TaskContext) error {
				f, err := tc.Create("file.h5")
				if err != nil {
					return err
				}
				for _, name := range []string{"dataset_1", "dataset_2"} {
					ds, err := f.Root().CreateDataset(name, hdf5.Float64, []int64{512}, nil)
					if err != nil {
						return err
					}
					if err := ds.WriteAll(make([]byte, 4096)); err != nil {
						return err
					}
					if err := ds.Close(); err != nil {
						return err
					}
				}
				return f.Close()
			},
		}}}},
	}
	res, err := runReplica(spec, func(*workflow.Engine) error { return nil }, defaultCluster(), nil)
	if err != nil {
		return nil, err
	}
	g := analyzer.BuildSDG(res.Traces, res.Manifest, analyzer.Options{
		PageSize: 4096, IncludeRegions: true, IncludeFileMetadata: true,
	})
	t := &Table{ID: "fig3", Title: "Example SDG: task -> datasets -> address regions -> file",
		Header: []string{"node kind", "count"}}
	s := analyzer.Summarize(g)
	t.AddRow("tasks", fmt.Sprint(s.Tasks))
	t.AddRow("datasets", fmt.Sprint(s.Datasets))
	t.AddRow("address regions", fmt.Sprint(s.Regions))
	t.AddRow("files", fmt.Sprint(s.Files))
	t.AddRow("edges", fmt.Sprint(s.Edges))
	if s.Datasets != 2 {
		t.AddNote("WARNING: expected 2 dataset nodes, got %d", s.Datasets)
	} else {
		t.AddNote("reproduced: dataset_1 and dataset_2 map to distinct address regions within the file node")
	}
	if err := graphArtifacts(t, g, "fig3_sdg"); err != nil {
		return nil, err
	}
	return t, nil
}

func pftConfig(opts Options) workloads.PyFlextrkrConfig {
	cfg := workloads.PyFlextrkrConfig{}
	if opts.Quick {
		cfg = workloads.PyFlextrkrConfig{
			ParallelTasks: 2, InputFiles: 2, FeatureBytes: 8 << 10,
			Stage9Datasets: 20, Stage9Accesses: 4,
		}
	}
	return cfg
}

// Fig4 regenerates the PyFLEXTRKR nine-stage FTG and verifies the
// paper's three FTG observations.
func Fig4(opts Options) (*Table, error) {
	spec, setup := workloads.PyFlextrkr(pftConfig(opts))
	res, err := runReplica(spec, setup, defaultCluster(), nil)
	if err != nil {
		return nil, err
	}
	g := analyzer.BuildFTG(res.Traces, res.Manifest)
	findings := diagnose.Analyze(res.Traces, res.Manifest, diagnose.Thresholds{ScatterMinDatasets: 10})

	t := &Table{ID: "fig4", Title: "PyFLEXTRKR workflow FTG (9 stages)",
		Header: []string{"observation", "paper", "reproduced"}}
	reuse := diagnose.ByKind(findings, diagnose.DataReuse)
	t.AddRow("data reuse (files read by >=2 tasks)", "stage-1 outputs reused by stages 2,3,4,6,8",
		fmt.Sprintf("%d reused files", len(reuse)))
	war := diagnose.ByKind(findings, diagnose.WriteAfterRead)
	t.AddRow("write-after-read (circle 1)", "run_gettracks stage-3", summarizeTasks(war))
	tdi := diagnose.ByKind(findings, diagnose.TimeDependentInput)
	t.AddRow("time-dependent inputs (circle 2)", "inputs first needed mid-workflow",
		fmt.Sprintf("%d late inputs", len(tdi)))
	disp := diagnose.ByKind(findings, diagnose.DisposableData)
	t.AddRow("disposable data (blue marks)", "initial inputs + single-consumer outputs",
		fmt.Sprintf("%d disposable files", len(disp)))
	s := analyzer.Summarize(g)
	t.AddNote("FTG: %d tasks, %d files, %d edges", s.Tasks, s.Files, s.Edges)
	if len(reuse) == 0 || len(war) == 0 || len(tdi) == 0 || len(disp) == 0 {
		t.AddNote("WARNING: an expected observation is missing")
	}
	if err := graphArtifacts(t, g, "fig4_ftg"); err != nil {
		return nil, err
	}
	t.AddArtifact("fig4_timeline.html", analyzer.BuildTimeline(res.Traces, res.Manifest).HTML())
	return t, nil
}

func summarizeTasks(fs []diagnose.Finding) string {
	if len(fs) == 0 {
		return "NOT FOUND"
	}
	return fs[0].Task + " on " + fs[0].File
}

// Fig5 regenerates the PyFLEXTRKR stage-9 SDG: many small datasets in
// one file driving metadata overhead.
func Fig5(opts Options) (*Table, error) {
	cfg := pftConfig(opts)
	spec, setup := workloads.PyFlextrkr(cfg)
	res, err := runReplica(spec, setup, defaultCluster(), nil)
	if err != nil {
		return nil, err
	}
	// Restrict to the stage-9 task, as the figure does.
	var stage9 []*trace.TaskTrace
	for _, tt := range res.Traces {
		if tt.Task == "run_speed" {
			stage9 = append(stage9, tt)
		}
	}
	g := analyzer.BuildSDG(stage9, res.Manifest, analyzer.Options{})
	findings := diagnose.Analyze(res.Traces, res.Manifest, diagnose.Thresholds{ScatterMinDatasets: 10})

	t := &Table{ID: "fig5", Title: "PyFLEXTRKR stage-9 SDG: scattered small datasets",
		Header: []string{"metric", "value"}}
	s := analyzer.Summarize(g)
	nDatasets := cfg.Stage9Datasets
	if nDatasets == 0 {
		nDatasets = 32
	}
	t.AddRow("datasets in stage-9 file", fmt.Sprint(s.Datasets))
	t.AddRow("dataset size", units.Bytes(400))
	t.AddRow("edges", fmt.Sprint(s.Edges))
	var scattering bool
	for _, f := range diagnose.ByKind(findings, diagnose.DataScattering) {
		if f.File == workloads.PftSpeedStats {
			scattering = true
			t.AddRow("small datasets flagged", fmt.Sprintf("%.0f of %.0f",
				f.Metrics["small_datasets"], f.Metrics["total_datasets"]))
		}
	}
	if scattering {
		t.AddNote("reproduced: many small (<500 B) datasets in one file cause frequent metadata access (paper circles 1 and 2)")
	} else {
		t.AddNote("WARNING: scattering not detected")
	}
	// Collapsed view: the analyzer's resolution adjustment.
	collapsed, err := analyzer.CollapseDatasets(g, 8)
	if err != nil {
		return nil, err
	}
	t.AddNote("resolution adjustment: %d dataset nodes collapse to %d",
		s.Datasets, analyzer.Summarize(collapsed).Datasets)
	if err := graphArtifacts(t, g, "fig5_sdg"); err != nil {
		return nil, err
	}
	return t, nil
}

func ddmdConfig(opts Options) workloads.DDMDConfig {
	cfg := workloads.DDMDConfig{}
	if opts.Quick {
		cfg = workloads.DDMDConfig{SimTasks: 4, ContactMapBytes: 32 << 10,
			SmallBytes: 4 << 10, Epochs: 10}
	}
	return cfg
}

// Fig6 regenerates the DDMD four-stage FTG and its observations.
func Fig6(opts Options) (*Table, error) {
	spec, setup := workloads.DDMD(ddmdConfig(opts))
	res, err := runReplica(spec, setup, defaultCluster(), nil)
	if err != nil {
		return nil, err
	}
	g := analyzer.BuildFTG(res.Traces, res.Manifest)
	findings := diagnose.Analyze(res.Traces, res.Manifest, diagnose.Thresholds{})

	t := &Table{ID: "fig6", Title: "DDMD workflow FTG (simulation/aggregate/training/inference)",
		Header: []string{"observation", "paper", "reproduced"}}
	seq := diagnose.ByKind(findings, diagnose.ReadOnlySequential)
	var aggSeq, infSeq int
	for _, f := range seq {
		switch {
		case f.Task == "aggregate_0000":
			aggSeq++
		case f.Task == "inference_0000":
			infSeq++
		}
	}
	t.AddRow("read-only sequential access (circles 1,3)",
		"aggregate and inference read all simulated data sequentially",
		fmt.Sprintf("aggregate: %d files, inference: %d files", aggSeq, infSeq))
	raw := diagnose.ByKind(findings, diagnose.ReadAfterWrite)
	t.AddRow("data reuse (circle 2)", "training re-reads embeddings 5 and 10",
		fmt.Sprintf("%d read-after-write files", len(raw)))
	ind := diagnose.ByKind(findings, diagnose.NoDataDependency)
	t.AddRow("no data dependency (circle 3)", "training and inference independent",
		fmt.Sprintf("%d independent pairs", len(ind)))
	if aggSeq == 0 || len(raw) < 2 || len(ind) == 0 {
		t.AddNote("WARNING: an expected observation is missing")
	}
	s := analyzer.Summarize(g)
	t.AddNote("FTG: %d tasks, %d files, %d edges", s.Tasks, s.Files, s.Edges)
	if err := graphArtifacts(t, g, "fig6_ftg"); err != nil {
		return nil, err
	}
	t.AddArtifact("fig6_timeline.html", analyzer.BuildTimeline(res.Traces, res.Manifest).HTML())
	return t, nil
}

// Fig7 regenerates the DDMD aggregate/training SDG with the
// contact_map metadata-only access.
func Fig7(opts Options) (*Table, error) {
	spec, setup := workloads.DDMD(ddmdConfig(opts))
	res, err := runReplica(spec, setup, defaultCluster(), nil)
	if err != nil {
		return nil, err
	}
	var sub []*trace.TaskTrace
	for _, tt := range res.Traces {
		if tt.Task == "aggregate_0000" || tt.Task == "training_0000" {
			sub = append(sub, tt)
		}
	}
	g := analyzer.BuildSDG(sub, res.Manifest, analyzer.Options{IncludeFileMetadata: true})
	findings := diagnose.Analyze(res.Traces, res.Manifest, diagnose.Thresholds{})

	t := &Table{ID: "fig7", Title: "DDMD aggregate->training SDG: contact_map unused by training",
		Header: []string{"metric", "value"}}
	// The pop-up of Figure 7: training's access statistics for the
	// aggregated contact_map.
	aggFile := workloads.DDMDAggFile(0)
	for _, tt := range sub {
		if tt.Task != "training_0000" {
			continue
		}
		for _, ms := range tt.Mapped {
			if ms.File == aggFile && ms.Object == "/contact_map" {
				t.AddRow("Access Volume", units.Bytes(ms.Bytes()))
				t.AddRow("Access Count", fmt.Sprint(ms.Ops()))
				t.AddRow("HDF5 Data Access Count", fmt.Sprint(ms.DataOps))
				t.AddRow("HDF5 Metadata Access Count", fmt.Sprint(ms.MetaOps))
				t.AddRow("Operation", "read_only")
			}
		}
	}
	var metaOnly bool
	for _, f := range diagnose.ByKind(findings, diagnose.MetadataOnlyAccess) {
		if f.Object == "/contact_map" && f.File == aggFile {
			metaOnly = true
			t.AddRow("unused content (partial-access saving)",
				units.Bytes(int64(f.Metrics["content_bytes"])))
		}
	}
	if metaOnly {
		t.AddNote("reproduced: training touches only contact_map's metadata in the aggregated file; its content is read from simulation output instead (circles 1-3)")
	} else {
		t.AddNote("WARNING: metadata-only contact_map access not detected")
	}
	if err := graphArtifacts(t, g, "fig7_sdg"); err != nil {
		return nil, err
	}
	return t, nil
}

// Fig8 regenerates the ARLDM stage-1 SDGs for contiguous and chunked
// VL layouts, comparing fragmentation and write-operation counts.
func Fig8(opts Options) (*Table, error) {
	stories := 48
	imageBytes := int64(16 << 10)
	if opts.Quick {
		stories, imageBytes = 24, 8<<10
	}
	run := func(layout hdf5.Layout) (*workflow.Result, *graph.Graph, error) {
		spec, setup := workloads.ARLDM(workloads.ARLDMConfig{
			Stories: stories, ImageBytes: imageBytes, Layout: layout,
		})
		res, err := runReplica(spec, setup, defaultCluster(), nil)
		if err != nil {
			return nil, nil, err
		}
		var sub []*trace.TaskTrace
		for _, tt := range res.Traces {
			if tt.Task == "arldm_saveh5" {
				sub = append(sub, tt)
			}
		}
		g := analyzer.BuildSDG(sub, res.Manifest, analyzer.Options{
			PageSize: 64 << 10, IncludeRegions: true, IncludeFileMetadata: true,
		})
		return res, g, nil
	}
	contigRes, contigG, err := run(hdf5.Contiguous)
	if err != nil {
		return nil, err
	}
	chunkRes, chunkG, err := run(hdf5.Chunked)
	if err != nil {
		return nil, err
	}

	writeOps := func(res *workflow.Result) (int64, int64) {
		for _, tt := range res.Traces {
			if tt.Task != "arldm_saveh5" {
				continue
			}
			for _, fr := range tt.Files {
				if fr.File == workloads.ARLDMOutFile {
					return fr.Writes, fr.BytesWritten
				}
			}
		}
		return 0, 0
	}
	cw, cb := writeOps(contigRes)
	kw, kb := writeOps(chunkRes)

	t := &Table{ID: "fig8", Title: "ARLDM stage-1 SDG: contiguous (a) vs chunked (b) VL datasets",
		Header: []string{"metric", "contiguous", "chunked"}}
	cs, ks := analyzer.Summarize(contigG), analyzer.Summarize(chunkG)
	t.AddRow("datasets", fmt.Sprint(cs.Datasets), fmt.Sprint(ks.Datasets))
	t.AddRow("address regions", fmt.Sprint(cs.Regions), fmt.Sprint(ks.Regions))
	t.AddRow("POSIX write ops", fmt.Sprint(cw), fmt.Sprint(kw))
	t.AddRow("bytes written", units.Bytes(cb), units.Bytes(kb))
	t.AddRow("file size", units.Bytes(contigRes.Traces[0].Files[0].Regions[len(contigRes.Traces[0].Files[0].Regions)-1].End),
		units.Bytes(chunkRes.Traces[0].Files[0].Regions[len(chunkRes.Traces[0].Files[0].Regions)-1].End))
	ratio := float64(cw) / float64(kw)
	t.AddNote("reproduced: chunked layout issues %.2fx fewer write operations than contiguous for VL data (paper: ~2x)", ratio)
	if ratio < 1.3 {
		t.AddNote("WARNING: write-op reduction below expected range")
	}
	t.AddNote("box 1: datasets fragment across address regions in both layouts; box 2: the chunked layout adds a File-Metadata region")
	if err := graphArtifacts(t, contigG, "fig8a_contiguous_sdg"); err != nil {
		return nil, err
	}
	if err := graphArtifacts(t, chunkG, "fig8b_chunked_sdg"); err != nil {
		return nil, err
	}
	return t, nil
}
