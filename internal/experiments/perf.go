package experiments

import (
	"fmt"
	"time"

	"dayu/internal/hdf5"
	"dayu/internal/optimizer"
	"dayu/internal/sim"
	"dayu/internal/units"
	"dayu/internal/vfd"
	"dayu/internal/workflow"
	"dayu/internal/workloads"
)

// Fig11: PyFLEXTRKR stages 3-5, baseline shared BeeGFS vs DaYu-guided
// node-local SSD placement with co-scheduling and staging, in the
// paper's two configurations (scaled down: C1 = 2 nodes, C2 = 8 nodes).
func Fig11(opts Options) (*Table, error) {
	type config struct {
		name    string
		tasks   int
		nodes   int
		feature int64
	}
	configs := []config{
		{"C1 (scaled 170MB/48P/2N)", 6, 2, 256 << 10},
		{"C2 (scaled 1.2GB/240P/8N)", 12, 8, 512 << 10},
	}
	if opts.Quick {
		configs = []config{
			{"C1 (quick)", 3, 2, 32 << 10},
			{"C2 (quick)", 6, 4, 64 << 10},
		}
	}
	t := &Table{ID: "fig11", Title: "PyFLEXTRKR stages 3-5: baseline BeeGFS vs DaYu-optimized SSD",
		Header: []string{"config", "segment", "baseline", "DaYu SSD", "speedup"}}

	for _, c := range configs {
		cfg := workloads.PyFlextrkrConfig{
			ParallelTasks: c.tasks, InputFiles: c.tasks, FeatureBytes: c.feature,
			Stage9Datasets: 8, Stage9Accesses: 2,
		}
		cluster := workflow.Cluster{Machine: sim.MachineGPU, Nodes: c.nodes}

		spec, setup := workloads.PyFlextrkrStages3to5(cfg)
		baseRes, err := runReplica(spec, setup, cluster, nil)
		if err != nil {
			return nil, err
		}
		// DaYu: analyze the baseline traces, derive the locality plan.
		plan := optimizer.PlanDataLocality(baseRes.Traces, baseRes.Manifest, optimizer.LocalityOptions{
			FastTier: "nvme", Nodes: c.nodes, StageOutDisposable: true,
		})
		spec2, setup2 := workloads.PyFlextrkrStages3to5(cfg)
		optRes, err := runReplica(spec2, setup2, cluster, plan)
		if err != nil {
			return nil, err
		}

		segments := []string{"stage3_gettracks", "stage4_trackstats", "stage5_identifymcs"}
		var baseTotal, optTotal time.Duration
		var stageIn, stageOut time.Duration
		for _, s := range optRes.Stages {
			if len(s.Name) > 9 && s.Name[:9] == "stage-in:" {
				stageIn += s.Time
			}
			if len(s.Name) > 10 && s.Name[:10] == "stage-out:" {
				stageOut += s.Time
			}
		}
		t.AddRow(c.name, "Stage-In", "-", units.Duration(stageIn), "")
		for _, seg := range segments {
			b, o := baseRes.StageTime(seg), optRes.StageTime(seg)
			baseTotal += b
			optTotal += o
			t.AddRow(c.name, seg, units.Duration(b), units.Duration(o),
				fmtSpeedup(float64(b), float64(o)))
		}
		t.AddRow(c.name, "Stage-Out", "-", units.Duration(stageOut), "")
		optAll := optTotal + stageIn + stageOut
		t.AddRow(c.name, "overall (incl. staging)", units.Duration(baseTotal),
			units.Duration(optAll), fmtSpeedup(float64(baseTotal), float64(optAll)))
		if optAll >= baseTotal {
			t.AddNote("WARNING: %s saw no improvement", c.name)
		}
	}
	t.AddNote("paper: overall 1.6x speedup for stages 3-5; stage-3 speedup 2.6x in C1")
	return t, nil
}

// Fig12: DDMD, baseline on shared BeeGFS vs the DaYu-optimized
// configuration (node-local SSD placement, co-located aggregate and
// inference, unused-dataset elimination, parallel training/inference,
// asynchronous stage-out), across 5 pipeline iterations.
func Fig12(opts Options) (*Table, error) {
	iterations := 5
	base := workloads.DDMDConfig{Iterations: iterations}
	if opts.Quick {
		base = workloads.DDMDConfig{Iterations: 2, SimTasks: 4,
			ContactMapBytes: 64 << 10, SmallBytes: 8 << 10, Epochs: 4}
		iterations = 2
	}
	cluster := workflow.Cluster{Machine: sim.MachineGPU, Nodes: 2}

	spec, setup := workloads.DDMD(base)
	baseRes, err := runReplica(spec, setup, cluster, nil)
	if err != nil {
		return nil, err
	}

	optCfg := base
	optCfg.SkipUnusedDataset = true
	optCfg.ParallelTrainInfer = true
	optSpec, optSetup := workloads.DDMD(optCfg)
	plan := optimizer.PlanDataLocality(baseRes.Traces, baseRes.Manifest, optimizer.LocalityOptions{
		FastTier: "nvme", Nodes: 2, StageOutDisposable: true, AsyncStageOut: true,
	})
	optRes, err := runReplica(optSpec, optSetup, cluster, plan)
	if err != nil {
		return nil, err
	}

	t := &Table{ID: "fig12", Title: "DDMD execution: baseline BeeGFS vs DaYu-optimized (BeeGFS+SSD)",
		Header: []string{"iteration", "baseline", "optimized", "speedup"}}
	iterTime := func(res *workflow.Result, iter int) time.Duration {
		var total time.Duration
		suffix := fmt.Sprintf("_%04d", iter)
		for _, s := range res.Stages {
			if s.Async {
				continue
			}
			if len(s.Name) >= len(suffix) && s.Name[len(s.Name)-len(suffix):] == suffix {
				total += s.Time
			}
		}
		return total
	}
	var baseSum, optSum time.Duration
	for i := 0; i < iterations; i++ {
		b, o := iterTime(baseRes, i), iterTime(optRes, i)
		baseSum += b
		optSum += o
		t.AddRow(fmt.Sprint(i+1), units.Duration(b), units.Duration(o),
			fmtSpeedup(float64(b), float64(o)))
	}
	t.AddRow("overall", units.Duration(baseSum), units.Duration(optSum),
		fmtSpeedup(float64(baseSum), float64(optSum)))
	t.AddNote("paper: 1.15x per iteration, 1.2x across the 5-iteration pipeline")
	if optSum >= baseSum {
		t.AddNote("WARNING: no overall improvement")
	}
	return t, nil
}

// captureOps runs fn against a fresh traced in-memory file and returns
// the recorded op stream.
func captureOps(fileName string, build func(f *hdf5.File) error, access func(f *hdf5.File) error) (setup, accessOps []sim.Op, err error) {
	log := &vfd.OpLog{}
	drv := vfd.NewProfiledDriver(vfd.NewMemDriver(), fileName, nil, log)
	f, err := hdf5.Create(drv, fileName, hdf5.Config{})
	if err != nil {
		return nil, nil, err
	}
	if err := build(f); err != nil {
		return nil, nil, err
	}
	if err := f.Flush(); err != nil {
		return nil, nil, err
	}
	buildOps := log.SimOps()
	log.Reset()
	if err := access(f); err != nil {
		return nil, nil, err
	}
	if err := f.Flush(); err != nil {
		return nil, nil, err
	}
	return buildOps, log.SimOps(), nil
}

// Fig13a: PyFLEXTRKR stage-9 layout - 32 scattered small datasets vs
// one consolidated dataset, across dataset sizes and process counts,
// replayed on node-local NVMe.
func Fig13a(opts Options) (*Table, error) {
	sizes := []int64{1 << 10, 2 << 10, 4 << 10, 8 << 10}
	procCounts := []int{1, 2, 4, 8, 16}
	if opts.Quick {
		sizes = []int64{1 << 10, 8 << 10}
		procCounts = []int{1, 4}
	}
	const datasets = 32
	const accesses = 23

	t := &Table{ID: "fig13a", Title: "PyFLEXTRKR stage-9: scattered (baseline) vs consolidated datasets on NVMe",
		Header: []string{"dataset size", "procs", "baseline I/O", "consolidated I/O", "speedup"}}

	var minSp, maxSp float64
	for _, size := range sizes {
		// Baseline: 32 separate datasets; every access re-opens the
		// dataset (metadata) and reads it (data).
		_, baseOps, err := captureOps("scattered.h5",
			func(f *hdf5.File) error {
				for i := 0; i < datasets; i++ {
					ds, err := f.Root().CreateDataset(fmt.Sprintf("stat_%03d", i),
						hdf5.Uint8, []int64{size}, nil)
					if err != nil {
						return err
					}
					if err := ds.WriteAll(make([]byte, size)); err != nil {
						return err
					}
				}
				return nil
			},
			func(f *hdf5.File) error {
				for a := 0; a < accesses; a++ {
					for i := 0; i < datasets; i++ {
						ds, err := f.Root().OpenDataset(fmt.Sprintf("stat_%03d", i))
						if err != nil {
							return err
						}
						if _, err := ds.ReadAll(); err != nil {
							return err
						}
					}
				}
				return nil
			})
		if err != nil {
			return nil, err
		}
		// Consolidated: one large dataset opened once; accesses read the
		// original regions by offset.
		_, consOps, err := captureOps("consolidated.h5",
			func(f *hdf5.File) error {
				ds, err := f.Root().CreateDataset("stats", hdf5.Uint8,
					[]int64{size * datasets}, nil)
				if err != nil {
					return err
				}
				return ds.WriteAll(make([]byte, size*datasets))
			},
			func(f *hdf5.File) error {
				ds, err := f.Root().OpenDataset("stats")
				if err != nil {
					return err
				}
				for a := 0; a < accesses; a++ {
					for i := 0; i < datasets; i++ {
						if _, err := ds.Read(hdf5.Slab1D(int64(i)*size, size)); err != nil {
							return err
						}
					}
				}
				return nil
			})
		if err != nil {
			return nil, err
		}
		for _, procs := range procCounts {
			bt := sim.Replay(baseOps, sim.NVMeSSD, procs)
			ct := sim.Replay(consOps, sim.NVMeSSD, procs)
			sp := float64(bt) / float64(ct)
			if minSp == 0 || sp < minSp {
				minSp = sp
			}
			if sp > maxSp {
				maxSp = sp
			}
			t.AddRow(units.Bytes(size), fmt.Sprint(procs),
				units.Duration(bt), units.Duration(ct), fmt.Sprintf("%.2fx", sp))
		}
	}
	t.AddNote("paper: consolidation reduces I/O time 1.7x-3.7x across 1-8 KB datasets; benefit shrinks as concurrency grows")
	t.AddNote("measured speedup range: %.2fx-%.2fx", minSp, maxSp)
	if minSp < 1 {
		t.AddNote("WARNING: consolidation lost at some point")
	}
	return t, nil
}

// Fig13b: DDMD dataset layout - chunked (baseline) vs contiguous,
// across dataset sizes and process counts, replayed on BeeGFS.
func Fig13b(opts Options) (*Table, error) {
	sizes := []int64{100 << 10, 200 << 10, 400 << 10, 800 << 10}
	procCounts := []int{1, 2, 4}
	if opts.Quick {
		sizes = []int64{100 << 10, 400 << 10}
		procCounts = []int{1, 4}
	}
	t := &Table{ID: "fig13b", Title: "DDMD: chunked (baseline) vs contiguous datasets on BeeGFS",
		Header: []string{"dataset size", "procs", "chunked I/O", "contiguous I/O", "speedup"}}

	var maxSp float64
	for _, size := range sizes {
		workload := func(layout hdf5.Layout) ([]sim.Op, error) {
			var dsOpts *hdf5.DatasetOpts
			if layout == hdf5.Chunked {
				dsOpts = &hdf5.DatasetOpts{Layout: hdf5.Chunked, ChunkDims: []int64{size / 4}}
			}
			build, access, err := captureOps("ddmd_sim.h5",
				func(f *hdf5.File) error {
					// The OpenMM write pattern: the four datasets.
					for _, name := range workloads.DDMDDatasets {
						ds, err := f.Root().CreateDataset(name, hdf5.Uint8, []int64{size}, dsOpts)
						if err != nil {
							return err
						}
						if err := ds.WriteAll(make([]byte, size)); err != nil {
							return err
						}
					}
					return nil
				},
				func(f *hdf5.File) error {
					// The Aggregate read pattern: read everything back.
					for _, name := range workloads.DDMDDatasets {
						ds, err := f.Root().OpenDataset(name)
						if err != nil {
							return err
						}
						if _, err := ds.ReadAll(); err != nil {
							return err
						}
					}
					return nil
				})
			if err != nil {
				return nil, err
			}
			return append(build, access...), nil
		}
		chunkOps, err := workload(hdf5.Chunked)
		if err != nil {
			return nil, err
		}
		contigOps, err := workload(hdf5.Contiguous)
		if err != nil {
			return nil, err
		}
		for _, procs := range procCounts {
			bt := sim.Replay(chunkOps, sim.BeeGFS, procs)
			ct := sim.Replay(contigOps, sim.BeeGFS, procs)
			sp := float64(bt) / float64(ct)
			if sp > maxSp {
				maxSp = sp
			}
			t.AddRow(units.Bytes(size), fmt.Sprint(procs),
				units.Duration(bt), units.Duration(ct), fmt.Sprintf("%.2fx", sp))
		}
	}
	t.AddNote("paper: contiguous consistently outperforms chunked; up to 1.9x under high concurrency")
	t.AddNote("measured max speedup: %.2fx", maxSp)
	return t, nil
}

// Fig13c: ARLDM variable-length data - contiguous (baseline) vs chunked
// with 5 and 10 chunks, across scaled dataset volumes, replayed on
// BeeGFS. The metric is the arldm_saveh5 write time.
func Fig13c(opts Options) (*Table, error) {
	// Paper: 5-20 GB; scaled to MiB by the same 1024x factor.
	volumes := []int64{5 << 20, 10 << 20, 15 << 20, 20 << 20}
	imageBytes := int64(24 << 10)
	if opts.Quick {
		volumes = []int64{2 << 20, 4 << 20}
		imageBytes = 16 << 10
	}

	t := &Table{ID: "fig13c", Title: "ARLDM arldm_saveh5 write time: contiguous (baseline) vs chunked VL data on BeeGFS",
		Header: []string{"volume", "variant", "write time", "write ops", "speedup vs contig"}}

	var maxSp float64
	for _, vol := range volumes {
		stories := int(vol / imageBytes / 6)
		if stories < 5 {
			stories = 5
		}
		variants := []struct {
			name   string
			layout hdf5.Layout
			chunks int64
		}{
			{"Contig (Baseline)", hdf5.Contiguous, 0},
			{"5 Chunks", hdf5.Chunked, 5},
			{"10 Chunks", hdf5.Chunked, 10},
		}
		var contigTime time.Duration
		for _, v := range variants {
			cfg := workloads.ARLDMConfig{Stories: stories, ImageBytes: imageBytes,
				Layout: v.layout}
			if v.chunks > 0 {
				cfg.ChunkElems = (int64(stories) + v.chunks - 1) / v.chunks
			}
			spec, setup := workloads.ARLDM(cfg)
			res, err := runReplica(spec, setup, workflow.Cluster{Machine: sim.MachineGPU, Nodes: 1}, nil)
			if err != nil {
				return nil, err
			}
			// Replay only the saveh5 task's write stream.
			var ops []sim.Op
			for _, op := range res.OpsByTask["arldm_saveh5"][workloads.ARLDMOutFile] {
				if op.Write {
					ops = append(ops, op)
				}
			}
			writeTime := sim.Replay(ops, sim.BeeGFS, 1)
			if v.layout == hdf5.Contiguous {
				contigTime = writeTime
				t.AddRow(units.Bytes(vol), v.name, units.Duration(writeTime),
					fmt.Sprint(len(ops)), "1.00x")
				continue
			}
			sp := float64(contigTime) / float64(writeTime)
			if sp > maxSp {
				maxSp = sp
			}
			t.AddRow(units.Bytes(vol), v.name, units.Duration(writeTime),
				fmt.Sprint(len(ops)), fmt.Sprintf("%.2fx", sp))
		}
	}
	t.AddNote("paper: chunked layouts reduce VL I/O operations ~2x and improve write time up to 1.4x; comparable at the smallest volume")
	t.AddNote("measured max speedup: %.2fx", maxSp)
	return t, nil
}
