package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dayu_test_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("dayu_test_total") != c {
		t.Error("counter not cached by name")
	}
	g := r.Gauge("dayu_test_gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge = %d, want 5", got)
	}
}

func TestNilRegistryInert(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x", LatencyBuckets()).Observe(1)
	r.AddSpan("x", 0, 1, nil)
	if r.PrometheusText() != "" || r.Spans() != nil {
		t.Error("nil registry should be empty")
	}
	if _, err := r.JSON(); err != nil {
		t.Errorf("nil JSON: %v", err)
	}
}

// TestHistogramPercentiles checks the interpolation math on a known
// distribution: 100 values 1..100 against decade bounds.
func TestHistogramPercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count() != 100 || h.Sum() != 5050 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Errorf("min=%d max=%d", h.Min(), h.Max())
	}
	// Each bucket holds exactly 10 values, so interpolation is tight:
	// the q-quantile of U{1..100} must land within one bucket width.
	checks := []struct {
		q    float64
		want int64
	}{{0.50, 50}, {0.95, 95}, {0.99, 99}, {0.10, 10}, {1.0, 100}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want-10 || got > c.want+10 {
			t.Errorf("q%.2f = %d, want ~%d", c.q, got, c.want)
		}
	}
	if h.P50() > h.P95() || h.P95() > h.P99() {
		t.Errorf("percentiles not monotone: p50=%d p95=%d p99=%d", h.P50(), h.P95(), h.P99())
	}
	// Exact interpolation check: rank 50 falls at the end of the
	// (40,50] bucket, so p50 = 40 + (50-40)*(50-40)/10 = 50.
	if got := h.Quantile(0.5); got != 50 {
		t.Errorf("p50 = %d, want exactly 50", got)
	}
}

func TestHistogramOverflowAndEmpty(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []int64{10})
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Error("empty histogram should report zeros")
	}
	h.Observe(5)
	h.Observe(1000) // overflow bucket
	if got := h.Quantile(0.99); got != 1000 {
		t.Errorf("overflow quantile = %d, want observed max 1000", got)
	}
	if h.Count() != 2 || h.Max() != 1000 || h.Min() != 5 {
		t.Errorf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", LatencyBuckets())
	c := r.Counter("c")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(int64(w*1000 + i))
				c.Inc()
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8000 || c.Value() != 8000 {
		t.Errorf("count=%d counter=%d, want 8000", h.Count(), c.Value())
	}
}

func TestSpans(t *testing.T) {
	r := NewRegistry()
	r.AddSpan("stage", 0, 1000, map[string]string{"stage": "s1"})
	r.AddSpan("stage", 1000, 1500, nil)
	r.AddSpan("task", 200, 100, nil) // end < start clamps to zero length
	spans := r.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0].DurationNS() != 1000 || spans[0].Attrs["stage"] != "s1" {
		t.Errorf("span[0] = %+v", spans[0])
	}
	if spans[2].DurationNS() != 0 {
		t.Errorf("clamped span duration = %d", spans[2].DurationNS())
	}
	h := r.Histogram(Name("dayu_span_ns", "span", "stage"), LatencyBuckets())
	if h.Count() != 2 {
		t.Errorf("span histogram count = %d", h.Count())
	}
}

func TestSpanRingBound(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < maxSpans+100; i++ {
		r.AddSpan("s", int64(i), int64(i+1), nil)
	}
	if n := len(r.Spans()); n > maxSpans {
		t.Errorf("span log grew to %d (bound %d)", n, maxSpans)
	}
	if r.DroppedSpans() == 0 {
		t.Error("expected dropped spans")
	}
	// The newest span must survive eviction.
	spans := r.Spans()
	if spans[len(spans)-1].StartNS != int64(maxSpans+99) {
		t.Error("newest span evicted")
	}
}

func TestNameCanonical(t *testing.T) {
	got := Name("x_total", "op", "read", "class", "data")
	want := `x_total{class="data",op="read"}`
	if got != want {
		t.Errorf("Name = %s, want %s", got, want)
	}
	if Name("plain") != "plain" {
		t.Error("plain name changed")
	}
}

func TestPrometheusText(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("dayu_ops_total", "op", "read")).Add(3)
	r.Counter(Name("dayu_ops_total", "op", "write")).Add(2)
	r.Gauge("dayu_live").Set(1)
	h := r.Histogram(Name("dayu_lat_ns", "op", "read"), []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)
	text := r.PrometheusText()
	for _, want := range []string{
		"# TYPE dayu_ops_total counter",
		`dayu_ops_total{op="read"} 3`,
		`dayu_ops_total{op="write"} 2`,
		"# TYPE dayu_live gauge",
		"dayu_live 1",
		"# TYPE dayu_lat_ns histogram",
		`dayu_lat_ns_bucket{op="read",le="10"} 1`,
		`dayu_lat_ns_bucket{op="read",le="100"} 2`,
		`dayu_lat_ns_bucket{op="read",le="+Inf"} 3`,
		`dayu_lat_ns_sum{op="read"} 5055`,
		`dayu_lat_ns_count{op="read"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus text missing %q:\n%s", want, text)
		}
	}
	// TYPE lines appear once per base name even with multiple label sets.
	if strings.Count(text, "# TYPE dayu_ops_total counter") != 1 {
		t.Error("duplicate TYPE line")
	}
}

func TestJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Histogram("h", []int64{10}).Observe(4)
	r.AddSpan("stage", 0, 5, nil)
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["c"] != 2 {
		t.Errorf("counters = %+v", snap.Counters)
	}
	if snap.Histograms["h"].Count != 1 || snap.Histograms["h"].Max != 4 {
		t.Errorf("histograms = %+v", snap.Histograms)
	}
	if len(snap.Spans) != 1 {
		t.Errorf("spans = %+v", snap.Spans)
	}
}
