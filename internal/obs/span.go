package obs

// Spans are named intervals on the virtual-time axis. The workflow
// engine computes task and stage durations deterministically from the
// device models, so spans are stamped with those virtual nanoseconds
// rather than host time: the same run always yields the same span
// timeline, and span math never perturbs the wall-clock overhead the
// bench suite measures. Each span also feeds a latency histogram named
// dayu_span_ns{span="<name>"} so distributions survive the bounded
// span log.

// SpanRecord is one completed span.
type SpanRecord struct {
	// Name identifies the span kind, e.g. "stage" or "task".
	Name string `json:"name"`
	// StartNS and EndNS are virtual-time nanoseconds from run start.
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
	// Attrs carries structured context (stage, task, node, attempts...).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// DurationNS returns the span's virtual duration.
func (s SpanRecord) DurationNS() int64 { return s.EndNS - s.StartNS }

// AddSpan records a completed interval [startNS, endNS] of virtual
// time. attrs may be nil. The span is appended to the bounded span log
// and its duration observed into the span histogram for its name.
func (r *Registry) AddSpan(name string, startNS, endNS int64, attrs map[string]string) {
	if r == nil {
		return
	}
	if endNS < startNS {
		endNS = startNS
	}
	h := r.Histogram(Name("dayu_span_ns", "span", name), LatencyBuckets())
	h.Observe(endNS - startNS)
	r.mu.Lock()
	if len(r.spans) >= maxSpans {
		// Drop the oldest half in one move so appends stay amortized O(1).
		n := copy(r.spans, r.spans[maxSpans/2:])
		r.dropped += int64(len(r.spans) - n)
		r.spans = r.spans[:n]
	}
	r.spans = append(r.spans, SpanRecord{Name: name, StartNS: startNS, EndNS: endNS, Attrs: attrs})
	r.mu.Unlock()
}

// Spans returns a copy of the retained span log in insertion order.
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]SpanRecord(nil), r.spans...)
}

// DroppedSpans reports how many spans were discarded by the ring bound.
func (r *Registry) DroppedSpans() int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.dropped
}
