package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket distribution: cumulative-style buckets
// with precomputed upper bounds, plus count/sum/min/max. Observations
// are lock-free (binary search over the bounds, then atomic adds), so
// it is safe on the VFD hot path. Percentiles are estimated by linear
// interpolation within the owning bucket, the same scheme Prometheus'
// histogram_quantile uses.
type Histogram struct {
	bounds  []int64        // sorted upper bounds; an implicit +Inf bucket follows
	buckets []atomic.Int64 // len(bounds)+1 counts
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	bs := append([]int64(nil), bounds...)
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	h := &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
	h.min.Store(math.MaxInt64)
	h.max.Store(math.MinInt64)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the bucket holding the target rank. Values in
// the overflow bucket report the observed maximum; the first bucket
// interpolates from the observed minimum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if n == 0 {
			cum += n
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		// Target rank falls in bucket i: interpolate.
		if i == len(h.bounds) {
			return h.Max()
		}
		lower := h.Min()
		if i > 0 {
			lower = h.bounds[i-1]
		}
		upper := h.bounds[i]
		if upper > h.Max() {
			upper = h.Max()
		}
		if upper < lower {
			upper = lower
		}
		frac := (rank - cum) / n
		return lower + int64(frac*float64(upper-lower))
	}
	return h.Max()
}

// P50, P95, P99 are convenience quantiles.
func (h *Histogram) P50() int64 { return h.Quantile(0.50) }
func (h *Histogram) P95() int64 { return h.Quantile(0.95) }
func (h *Histogram) P99() int64 { return h.Quantile(0.99) }

// Buckets returns (upper bound, cumulative count) pairs, ending with
// the +Inf bucket (bound = math.MaxInt64).
func (h *Histogram) Buckets() ([]int64, []int64) {
	if h == nil {
		return nil, nil
	}
	bounds := make([]int64, len(h.buckets))
	counts := make([]int64, len(h.buckets))
	var cum int64
	for i := range h.buckets {
		if i < len(h.bounds) {
			bounds[i] = h.bounds[i]
		} else {
			bounds[i] = math.MaxInt64
		}
		cum += h.buckets[i].Load()
		counts[i] = cum
	}
	return bounds, counts
}

// LatencyBuckets covers 250ns..~4s exponentially: fine enough to
// resolve in-memory driver ops (hundreds of ns) and wide enough for
// simulated multi-second transfers.
func LatencyBuckets() []int64 {
	out := make([]int64, 0, 25)
	for v := int64(250); v <= 4_000_000_000 && len(out) < 25; v *= 2 {
		out = append(out, v)
	}
	return out
}

// SizeBuckets covers 64B..1GiB exponentially (I/O sizes).
func SizeBuckets() []int64 {
	out := make([]int64, 0, 25)
	for v := int64(64); v <= 1<<30 && len(out) < 25; v *= 2 {
		out = append(out, v)
	}
	return out
}
