package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// splitName separates a metric name from its embedded label block:
// `x{a="b"}` -> ("x", `a="b"`); plain names return ("x", "").
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// suffixed rebuilds a metric name with a suffix on the base and
// optional extra labels: suffixed(`x{a="b"}`, "_bucket", `le="5"`)
// returns `x_bucket{a="b",le="5"}`.
func suffixed(name, suffix, extra string) string {
	base, labels := splitName(name)
	switch {
	case labels == "" && extra == "":
		return base + suffix
	case labels == "":
		return base + suffix + "{" + extra + "}"
	case extra == "":
		return base + suffix + "{" + labels + "}"
	default:
		return base + suffix + "{" + labels + "," + extra + "}"
	}
}

// PrometheusText renders every metric in the Prometheus text exposition
// format (histograms as cumulative _bucket/_sum/_count series), with
// names sorted for deterministic output.
func (r *Registry) PrometheusText() string {
	if r == nil {
		return ""
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	counterNames := r.counterNames()
	gaugeNames := r.gaugeNames()
	histNames := r.histNames()
	r.mu.RUnlock()

	var b strings.Builder
	seenType := map[string]bool{}
	typeLine := func(name, typ string) {
		base, _ := splitName(name)
		if !seenType[base] {
			seenType[base] = true
			fmt.Fprintf(&b, "# TYPE %s %s\n", base, typ)
		}
	}
	for _, name := range counterNames {
		typeLine(name, "counter")
		fmt.Fprintf(&b, "%s %d\n", name, counters[name].Value())
	}
	for _, name := range gaugeNames {
		typeLine(name, "gauge")
		fmt.Fprintf(&b, "%s %d\n", name, gauges[name].Value())
	}
	for _, name := range histNames {
		h := hists[name]
		base, _ := splitName(name)
		if !seenType[base] {
			seenType[base] = true
			fmt.Fprintf(&b, "# TYPE %s histogram\n", base)
		}
		bounds, cum := h.Buckets()
		for i, bound := range bounds {
			le := "+Inf"
			if bound != math.MaxInt64 {
				le = fmt.Sprint(bound)
			}
			fmt.Fprintf(&b, "%s %d\n", suffixed(name, "_bucket", `le="`+le+`"`), cum[i])
		}
		fmt.Fprintf(&b, "%s %d\n", suffixed(name, "_sum", ""), h.Sum())
		fmt.Fprintf(&b, "%s %d\n", suffixed(name, "_count", ""), h.Count())
	}
	return b.String()
}

// HistogramSnapshot is the JSON form of one histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
}

// Snapshot is a point-in-time JSON-friendly view of the registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []SpanRecord                 `json:"spans,omitempty"`
	// DroppedSpans counts spans evicted from the bounded span log.
	DroppedSpans int64 `json:"dropped_spans,omitempty"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.RLock()
	s.Counters = make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	s.Gauges = make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		s.Histograms[name] = HistogramSnapshot{
			Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
			Mean: h.Mean(), P50: h.P50(), P95: h.P95(), P99: h.P99(),
		}
	}
	s.Spans = append([]SpanRecord(nil), r.spans...)
	s.DroppedSpans = r.dropped
	r.mu.RUnlock()
	return s
}

// JSON renders the registry snapshot as indented JSON.
func (r *Registry) JSON() ([]byte, error) {
	return json.MarshalIndent(r.Snapshot(), "", "  ")
}
