// Package obs is DaYu's self-observability layer: a dependency-free,
// concurrent-safe metrics registry (counters, gauges, fixed-bucket
// histograms with percentile estimation) plus lightweight spans that
// bill into the simulation's virtual-time axis. The paper measures
// everyone else's I/O (§IV, §VII-B); this package measures DaYu itself,
// so the reproduction's overhead study and hot paths stay tracked
// across PRs (the BENCH_*.json trajectory).
//
// Design constraints:
//
//   - No dependencies on other dayu packages, so every layer (vfd,
//     workflow, workloads, cmd) can emit metrics without import cycles.
//   - Hot-path operations (Counter.Add, Histogram.Observe) are lock-free
//     after metric creation: one atomic add for counters, a binary
//     search over ~2 dozen bounds plus two atomic adds for histograms.
//   - A nil *Registry is inert: instrumentation seams take a registry
//     pointer and simply skip decoration when it is nil, so the
//     disabled path adds no work at all to the I/O hot loops.
//   - Virtual-time spans are deterministic: they are stamped from the
//     simulated clock, not the host clock, so the same workflow run
//     always produces the same span timeline.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative deltas are ignored:
// counters are monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by delta (either sign).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry holds named metrics. Metric names follow the Prometheus
// convention and may embed a label set, e.g.
//
//	dayu_vfd_op_ns{driver="store",op="read",class="data"}
//
// Get-or-create lookups take a short write lock; the returned metric
// handles are cached by instrumentation sites so steady-state updates
// never touch the registry lock.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []SpanRecord
	dropped  int64 // spans discarded once the ring is full
}

// maxSpans bounds the retained span log; beyond it the oldest spans
// are dropped (and counted) so long runs cannot grow without bound.
const maxSpans = 8192

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
// Returns an unregistered dummy on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use. Later calls for the same name reuse the
// original bounds regardless of the bounds argument.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// counterNames returns sorted counter names (for deterministic export).
func (r *Registry) counterNames() []string {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (r *Registry) gaugeNames() []string {
	names := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (r *Registry) histNames() []string {
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Name formats a metric name with a label set in canonical (sorted)
// order: Name("x_total", "op", "read", "class", "data") returns
// `x_total{class="data",op="read"}`. Pairs must come key, value.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	if len(kv)%2 != 0 {
		panic("obs: Name needs key/value pairs")
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	s := base + "{"
	for i, p := range pairs {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%s=%q", p.k, p.v)
	}
	return s + "}"
}
