package obs

import "net/http"

// Handler returns an http.Handler exposing the registry: Prometheus
// text exposition format by default, the JSON snapshot with
// ?format=json. A nil registry serves an empty exposition, so wiring
// the handler is safe even when observability is disabled.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if req.URL.Query().Get("format") == "json" {
			data, err := r.JSON()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(data)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.PrometheusText()))
	})
}
