package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerPrometheusAndJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(Name("dayu_serve_cache_hits_total", "cache", "snapshot")).Add(3)
	reg.Gauge("dayu_serve_inflight_requests").Set(1)
	reg.Histogram("dayu_serve_ingest_ns", LatencyBuckets()).Observe(1500)

	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if !strings.Contains(body, `dayu_serve_cache_hits_total{cache="snapshot"} 3`) {
		t.Errorf("prometheus body missing counter:\n%s", body)
	}
	if !strings.Contains(body, "dayu_serve_inflight_requests 1") {
		t.Errorf("prometheus body missing gauge:\n%s", body)
	}
	if !strings.Contains(resp.Header.Get("Content-Type"), "text/plain") {
		t.Errorf("content type = %q", resp.Header.Get("Content-Type"))
	}

	resp2, err := http.Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp2.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters[Name("dayu_serve_cache_hits_total", "cache", "snapshot")] != 3 {
		t.Errorf("json snapshot counters = %v", snap.Counters)
	}

	resp3, err := http.Post(srv.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp3.StatusCode)
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	rec := httptest.NewRecorder()
	Handler(nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("nil registry status = %d", rec.Code)
	}
}
