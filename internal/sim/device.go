package sim

import (
	"fmt"
	"time"
)

// OpClass distinguishes the two I/O classes the DaYu VFD profiler tags
// (Table II, parameter 6): file metadata traffic versus raw dataset data.
type OpClass uint8

const (
	// RawData is dataset content I/O.
	RawData OpClass = iota
	// Metadata is format-internal traffic: superblocks, object headers,
	// chunk indexes, heap headers.
	Metadata
)

func (c OpClass) String() string {
	if c == Metadata {
		return "metadata"
	}
	return "data"
}

// DeviceSpec is a parametric storage device model. Costs are first-order:
// a fixed per-operation latency plus a bandwidth term, with metadata
// operations paying an additional small-I/O penalty, and contention
// scaling when multiple processes hit the device concurrently.
type DeviceSpec struct {
	// Name identifies the device in reports, e.g. "nfs", "nvme".
	Name string
	// OpLatency is the fixed cost per I/O operation (seek/RPC/queue).
	OpLatency time.Duration
	// MetaLatency is an extra fixed cost applied to metadata operations
	// (small synchronous updates, index lookups).
	MetaLatency time.Duration
	// ReadBW and WriteBW are sustained bandwidths in bytes/second.
	ReadBW  float64
	WriteBW float64
	// ContentionFactor scales the bandwidth (transfer) term of per-op
	// cost under concurrency: effective = base * (1 + f*(procs-1)).
	// 0 models a perfectly parallel device, 1 a fully serialized one.
	// Sustained bandwidth is a shared resource on every tier.
	ContentionFactor float64
	// OpContention scales the fixed per-operation latency term the same
	// way. Deep-queue devices (NVMe) hide concurrent small operations
	// well (low value); metadata-server-bound parallel filesystems and
	// spinning disks do not (high value).
	OpContention float64
	// Shared marks devices reachable from every node (PFS/NFS); unshared
	// devices are node-local and staging is needed to reach them remotely.
	Shared bool
}

// Validate reports whether the spec is physically meaningful.
func (d DeviceSpec) Validate() error {
	switch {
	case d.Name == "":
		return fmt.Errorf("sim: device spec missing name")
	case d.ReadBW <= 0 || d.WriteBW <= 0:
		return fmt.Errorf("sim: device %q has non-positive bandwidth", d.Name)
	case d.OpLatency < 0 || d.MetaLatency < 0:
		return fmt.Errorf("sim: device %q has negative latency", d.Name)
	case d.ContentionFactor < 0 || d.OpContention < 0:
		return fmt.Errorf("sim: device %q has negative contention factor", d.Name)
	}
	return nil
}

// Cost returns the un-contended virtual time one operation takes on the
// device.
func (d DeviceSpec) Cost(class OpClass, bytes int64, write bool) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	bw := d.ReadBW
	if write {
		bw = d.WriteBW
	}
	transfer := time.Duration(float64(bytes) / bw * float64(time.Second))
	cost := d.OpLatency + transfer
	if class == Metadata {
		cost += d.MetaLatency
	}
	return cost
}

// Contended scales a base duration by the bandwidth contention factor
// for procs concurrent processes.
func (d DeviceSpec) Contended(base time.Duration, procs int) time.Duration {
	if procs <= 1 {
		return base
	}
	f := 1 + d.ContentionFactor*float64(procs-1)
	return time.Duration(float64(base) * f)
}

// ContendedCost returns the per-operation virtual time under procs-way
// concurrency, scaling the latency and transfer terms by their
// respective contention factors.
func (d DeviceSpec) ContendedCost(class OpClass, bytes int64, write bool, procs int) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	bw := d.ReadBW
	if write {
		bw = d.WriteBW
	}
	lat := d.OpLatency
	if class == Metadata {
		lat += d.MetaLatency
	}
	transfer := time.Duration(float64(bytes) / bw * float64(time.Second))
	if procs > 1 {
		lat = time.Duration(float64(lat) * (1 + d.OpContention*float64(procs-1)))
		transfer = time.Duration(float64(transfer) * (1 + d.ContentionFactor*float64(procs-1)))
	}
	return lat + transfer
}

// Device presets. Parameters are first-order approximations of the tiers
// in Table III; absolute values are not calibrated to the authors'
// testbed (the paper compares shapes, not absolute numbers).
var (
	// NFS: the CPU cluster's default shared filesystem. High per-op RPC
	// latency, modest bandwidth, near-serial under contention.
	NFS = DeviceSpec{
		Name: "nfs", OpLatency: 400 * time.Microsecond,
		MetaLatency: 300 * time.Microsecond,
		ReadBW:      220e6, WriteBW: 180e6,
		ContentionFactor: 0.80, OpContention: 0.9, Shared: true,
	}
	// BeeGFS: the GPU cluster's parallel filesystem; better parallel
	// bandwidth than NFS but still latency-bound for small I/O.
	BeeGFS = DeviceSpec{
		Name: "beegfs", OpLatency: 250 * time.Microsecond,
		MetaLatency: 200 * time.Microsecond,
		ReadBW:      900e6, WriteBW: 700e6,
		ContentionFactor: 0.45, OpContention: 0.65, Shared: true,
	}
	// NVMeSSD: node-local NVMe, the fast tier used for DaYu-guided
	// placement and the Figure 13a consolidation experiment.
	NVMeSSD = DeviceSpec{
		Name: "nvme", OpLatency: 20 * time.Microsecond,
		MetaLatency: 8 * time.Microsecond,
		ReadBW:      2800e6, WriteBW: 2000e6,
		ContentionFactor: 0.80, OpContention: 0.05,
	}
	// SATASSD: node-local SATA SSD.
	SATASSD = DeviceSpec{
		Name: "sata-ssd", OpLatency: 80 * time.Microsecond,
		MetaLatency: 30 * time.Microsecond,
		ReadBW:      520e6, WriteBW: 480e6,
		ContentionFactor: 0.90, OpContention: 0.20,
	}
	// HDD: node-local spinning disk; seek-dominated.
	HDD = DeviceSpec{
		Name: "hdd", OpLatency: 6 * time.Millisecond,
		MetaLatency: 2 * time.Millisecond,
		ReadBW:      160e6, WriteBW: 140e6,
		ContentionFactor: 1.0, OpContention: 1.0,
	}
	// Memory: in-memory staging tier (Hermes-style buffer).
	Memory = DeviceSpec{
		Name: "memory", OpLatency: 200 * time.Nanosecond,
		MetaLatency: 100 * time.Nanosecond,
		ReadBW:      12e9, WriteBW: 10e9,
		ContentionFactor: 0.10, OpContention: 0.01,
	}
)

// DeviceByName resolves a preset device spec by its Name field.
func DeviceByName(name string) (DeviceSpec, error) {
	for _, d := range []DeviceSpec{NFS, BeeGFS, NVMeSSD, SATASSD, HDD, Memory} {
		if d.Name == name {
			return d, nil
		}
	}
	return DeviceSpec{}, fmt.Errorf("sim: unknown device %q", name)
}
