// Package sim provides the simulated hardware substrate the paper's
// evaluation machines (Table III) are replaced with: parametric storage
// device models, a cluster/network model, and a deterministic virtual
// clock. Performance experiments (Figures 11-13) replay real I/O
// operation logs produced by the DaYu profilers against these models,
// so relative results depend only on operation counts, sizes and
// placement - exactly the first-order effects the paper measures.
package sim

import (
	"fmt"
	"time"
)

// Clock is a deterministic virtual clock. It is not safe for concurrent
// use; each simulated execution context owns its own clock.
type Clock struct {
	now time.Duration
}

// NewClock returns a clock at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now reports the current virtual time as an offset from simulation start.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative advances panic: simulated
// time never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: clock advanced by negative duration %v", d))
	}
	c.now += d
}

// AdvanceTo moves the clock to time t if t is later than the current
// time; earlier targets are ignored (the clock is monotone).
func (c *Clock) AdvanceTo(t time.Duration) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero for reuse across independent runs.
func (c *Clock) Reset() { c.now = 0 }
