package sim

import (
	"fmt"
	"time"
)

// NetworkSpec models the interconnect used for staging data between the
// shared filesystem and node-local tiers, and between nodes.
type NetworkSpec struct {
	Name    string
	Latency time.Duration
	// BW is point-to-point bandwidth in bytes/second.
	BW float64
}

// TransferCost is the virtual time to move `bytes` across the network.
func (n NetworkSpec) TransferCost(bytes int64) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	return n.Latency + time.Duration(float64(bytes)/n.BW*float64(time.Second))
}

// Machine describes one of the evaluation platforms from Table III:
// a default shared store plus the node-local options.
type Machine struct {
	Name    string
	Notes   string
	Default DeviceSpec   // shared filesystem tasks use unless placed
	Local   []DeviceSpec // node-local tiers available for placement
	Network NetworkSpec
	// CoresPerNode bounds how many simulated processes run concurrently
	// on one node without time-slicing.
	CoresPerNode int
	MemoryBytes  int64
}

// LocalByName returns the machine's node-local tier with the given name.
func (m Machine) LocalByName(name string) (DeviceSpec, error) {
	for _, d := range m.Local {
		if d.Name == name {
			return d, nil
		}
	}
	return DeviceSpec{}, fmt.Errorf("sim: machine %q has no local device %q", m.Name, name)
}

// The two machines in Table III.
var (
	// MachineCPU: 2x Intel Xeon Silver 4114, 48 GB RAM;
	// NFS (default), NVMe SSD, SATA SSD, HDD (node-local).
	MachineCPU = Machine{
		Name:    "cpu-cluster",
		Notes:   "2x Intel Xeon Silver 4114, 48 GB RAM",
		Default: NFS,
		Local:   []DeviceSpec{NVMeSSD, SATASSD, HDD, Memory},
		Network: NetworkSpec{Name: "10GbE", Latency: 60 * time.Microsecond, BW: 1.1e9},
		// 2 sockets x 10 cores x 2 HT ~= 40; the paper runs up to 48
		// processes per 2 nodes, i.e. 24 per node.
		CoresPerNode: 24,
		MemoryBytes:  48 << 30,
	}
	// MachineGPU: 2x AMD EPYC, RTX 2080 Ti, 384 GB RAM;
	// NFS (default), BeeGFS with caching, node-local SSD.
	MachineGPU = Machine{
		Name:         "gpu-cluster",
		Notes:        "2x AMD EPYC, NVidia RTX 2080 Ti, 384 GB RAM",
		Default:      BeeGFS,
		Local:        []DeviceSpec{NVMeSSD, Memory},
		Network:      NetworkSpec{Name: "25GbE", Latency: 40 * time.Microsecond, BW: 2.8e9},
		CoresPerNode: 32,
		MemoryBytes:  384 << 30,
	}
)

// Machines lists all Table III machine configurations.
func Machines() []Machine { return []Machine{MachineCPU, MachineGPU} }

// MachineByName resolves a Table III machine by name.
func MachineByName(name string) (Machine, error) {
	for _, m := range Machines() {
		if m.Name == name {
			return m, nil
		}
	}
	return Machine{}, fmt.Errorf("sim: unknown machine %q", name)
}
