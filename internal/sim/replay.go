package sim

import "time"

// Op is one I/O operation to replay against a device model. Experiment
// harnesses convert DaYu VFD trace records into Ops, which keeps the
// simulated timing grounded in the operation stream the real format
// library produced.
type Op struct {
	Class OpClass
	Bytes int64
	Write bool
}

// Replay returns the virtual time for one process to issue ops in order
// on dev while procs processes contend for the device. Latency and
// bandwidth terms contend independently (see ContendedCost).
func Replay(ops []Op, dev DeviceSpec, procs int) time.Duration {
	var total time.Duration
	for _, op := range ops {
		total += dev.ContendedCost(op.Class, op.Bytes, op.Write, procs)
	}
	return total
}

// ReplayParallel models perProc[i] as the op stream of process i, all
// contending on dev; the wave completes when the slowest process does.
func ReplayParallel(perProc [][]Op, dev DeviceSpec) time.Duration {
	procs := len(perProc)
	var max time.Duration
	for _, ops := range perProc {
		if t := Replay(ops, dev, procs); t > max {
			max = t
		}
	}
	return max
}

// Summary aggregates an op stream the way DaYu's VFD statistics do.
type Summary struct {
	Ops       int
	MetaOps   int
	DataOps   int
	Bytes     int64
	MetaBytes int64
	DataBytes int64
	Reads     int
	Writes    int
}

// Summarize computes op-stream statistics.
func Summarize(ops []Op) Summary {
	var s Summary
	for _, op := range ops {
		s.Ops++
		s.Bytes += op.Bytes
		if op.Class == Metadata {
			s.MetaOps++
			s.MetaBytes += op.Bytes
		} else {
			s.DataOps++
			s.DataBytes += op.Bytes
		}
		if op.Write {
			s.Writes++
		} else {
			s.Reads++
		}
	}
	return s
}
