package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockMonotone(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("new clock not at zero")
	}
	c.Advance(5 * time.Millisecond)
	c.Advance(3 * time.Millisecond)
	if c.Now() != 8*time.Millisecond {
		t.Fatalf("Now() = %v, want 8ms", c.Now())
	}
	c.AdvanceTo(4 * time.Millisecond) // earlier: no-op
	if c.Now() != 8*time.Millisecond {
		t.Fatal("AdvanceTo moved clock backwards")
	}
	c.AdvanceTo(10 * time.Millisecond)
	if c.Now() != 10*time.Millisecond {
		t.Fatal("AdvanceTo failed to move clock forward")
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative Advance did not panic")
		}
	}()
	NewClock().Advance(-time.Second)
}

func TestDeviceSpecsValid(t *testing.T) {
	for _, d := range []DeviceSpec{NFS, BeeGFS, NVMeSSD, SATASSD, HDD, Memory} {
		if err := d.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", d.Name, err)
		}
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []DeviceSpec{
		{},
		{Name: "x", ReadBW: 0, WriteBW: 1},
		{Name: "x", ReadBW: 1, WriteBW: 1, OpLatency: -1},
		{Name: "x", ReadBW: 1, WriteBW: 1, ContentionFactor: -0.5},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}

func TestCostOrdering(t *testing.T) {
	// Bigger transfers cost more; metadata ops cost more than data ops
	// of the same size; negative byte counts are treated as zero.
	d := NFS
	small := d.Cost(RawData, 4<<10, false)
	big := d.Cost(RawData, 4<<20, false)
	if big <= small {
		t.Errorf("big transfer (%v) not costlier than small (%v)", big, small)
	}
	meta := d.Cost(Metadata, 4<<10, false)
	if meta <= small {
		t.Errorf("metadata op (%v) not costlier than data op (%v)", meta, small)
	}
	if d.Cost(RawData, -5, false) != d.Cost(RawData, 0, false) {
		t.Error("negative bytes not clamped")
	}
}

func TestTierOrdering(t *testing.T) {
	// For small random I/O the tiers must order memory < nvme < sata < nfs
	// and hdd slowest: that ordering drives every placement experiment.
	costs := map[string]time.Duration{}
	for _, d := range []DeviceSpec{Memory, NVMeSSD, SATASSD, NFS, HDD} {
		costs[d.Name] = d.Cost(RawData, 4<<10, false)
	}
	order := []string{"memory", "nvme", "sata-ssd", "nfs", "hdd"}
	for i := 1; i < len(order); i++ {
		if costs[order[i-1]] >= costs[order[i]] {
			t.Errorf("tier %s (%v) not faster than %s (%v)",
				order[i-1], costs[order[i-1]], order[i], costs[order[i]])
		}
	}
}

func TestContention(t *testing.T) {
	base := time.Millisecond
	if got := NFS.Contended(base, 1); got != base {
		t.Errorf("single proc scaled: %v", got)
	}
	c2 := NFS.Contended(base, 2)
	c8 := NFS.Contended(base, 8)
	if !(c8 > c2 && c2 > base) {
		t.Errorf("contention not monotone: %v %v %v", base, c2, c8)
	}
	// For small (latency-bound) operations, NVMe's deep queues contend
	// far less than NFS: compare the 8-way/1-way cost growth.
	growth := func(d DeviceSpec) float64 {
		one := d.ContendedCost(Metadata, 512, false, 1)
		eight := d.ContendedCost(Metadata, 512, false, 8)
		return float64(eight) / float64(one)
	}
	if growth(NVMeSSD) >= growth(NFS) {
		t.Errorf("NVMe small-op contention growth (%.2f) not below NFS (%.2f)",
			growth(NVMeSSD), growth(NFS))
	}
	// ContendedCost at procs=1 matches the plain cost.
	if NFS.ContendedCost(RawData, 4<<10, true, 1) != NFS.Cost(RawData, 4<<10, true) {
		t.Error("ContendedCost(1) != Cost")
	}
}

func TestDeviceByName(t *testing.T) {
	d, err := DeviceByName("beegfs")
	if err != nil || d.Name != "beegfs" {
		t.Fatalf("DeviceByName(beegfs) = %v, %v", d, err)
	}
	if _, err := DeviceByName("floppy"); err == nil {
		t.Error("unknown device resolved")
	}
}

func TestMachines(t *testing.T) {
	ms := Machines()
	if len(ms) != 2 {
		t.Fatalf("want 2 machines (Table III), got %d", len(ms))
	}
	for _, m := range ms {
		if err := m.Default.Validate(); err != nil {
			t.Errorf("%s default: %v", m.Name, err)
		}
		if !m.Default.Shared {
			t.Errorf("%s default device must be shared", m.Name)
		}
		for _, d := range m.Local {
			if err := d.Validate(); err != nil {
				t.Errorf("%s local %s: %v", m.Name, d.Name, err)
			}
			if d.Shared {
				t.Errorf("%s local device %s marked shared", m.Name, d.Name)
			}
		}
		if m.CoresPerNode <= 0 || m.MemoryBytes <= 0 {
			t.Errorf("%s has non-positive resources", m.Name)
		}
	}
	if _, err := MachineByName("cpu-cluster"); err != nil {
		t.Error(err)
	}
	if _, err := MachineByName("tpu-pod"); err == nil {
		t.Error("unknown machine resolved")
	}
	if _, err := MachineCPU.LocalByName("nvme"); err != nil {
		t.Error(err)
	}
	if _, err := MachineCPU.LocalByName("beegfs"); err == nil {
		t.Error("cpu cluster should not have local beegfs")
	}
}

func TestNetworkTransferCost(t *testing.T) {
	n := MachineCPU.Network
	zero := n.TransferCost(0)
	if zero != n.Latency {
		t.Errorf("zero-byte transfer = %v, want latency %v", zero, n.Latency)
	}
	if n.TransferCost(-1) != zero {
		t.Error("negative bytes not clamped")
	}
	if n.TransferCost(1<<30) <= n.TransferCost(1<<20) {
		t.Error("transfer cost not monotone in size")
	}
}

func TestReplayAndSummarize(t *testing.T) {
	ops := []Op{
		{Class: Metadata, Bytes: 512, Write: false},
		{Class: RawData, Bytes: 1 << 20, Write: true},
		{Class: RawData, Bytes: 1 << 20, Write: false},
	}
	s := Summarize(ops)
	if s.Ops != 3 || s.MetaOps != 1 || s.DataOps != 2 {
		t.Fatalf("bad counts: %+v", s)
	}
	if s.Bytes != 512+2<<20 || s.MetaBytes != 512 || s.DataBytes != 2<<20 {
		t.Fatalf("bad bytes: %+v", s)
	}
	if s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("bad rw: %+v", s)
	}

	t1 := Replay(ops, NVMeSSD, 1)
	t4 := Replay(ops, NVMeSSD, 4)
	if t4 <= t1 {
		t.Error("contended replay not slower")
	}
	// Parallel wave: max of per-proc costs at full contention.
	wave := ReplayParallel([][]Op{ops, ops[:1]}, NVMeSSD)
	if want := Replay(ops, NVMeSSD, 2); wave != want {
		t.Errorf("wave = %v, want %v", wave, want)
	}
	if ReplayParallel(nil, NVMeSSD) != 0 {
		t.Error("empty wave should cost nothing")
	}
}

func TestReplayProperty(t *testing.T) {
	// Replay is additive: splitting an op stream never changes total cost
	// at fixed contention.
	f := func(sizes []int16) bool {
		var ops []Op
		for _, s := range sizes {
			b := int64(s)
			if b < 0 {
				b = -b
			}
			ops = append(ops, Op{Class: RawData, Bytes: b * 64})
		}
		whole := Replay(ops, SATASSD, 1)
		half := len(ops) / 2
		split := Replay(ops[:half], SATASSD, 1) + Replay(ops[half:], SATASSD, 1)
		diff := whole - split
		if diff < 0 {
			diff = -diff
		}
		return diff <= time.Duration(len(ops)+1) // rounding slack
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContendedCostProperties(t *testing.T) {
	// For every preset device, cost is monotone in bytes and in process
	// count, and metadata never costs less than raw data of equal size.
	devs := []DeviceSpec{NFS, BeeGFS, NVMeSSD, SATASSD, HDD, Memory}
	f := func(rawBytes uint32, procs uint8, write bool) bool {
		bytes := int64(rawBytes % (64 << 20))
		p := 1 + int(procs%32)
		for _, d := range devs {
			c1 := d.ContendedCost(RawData, bytes, write, p)
			c2 := d.ContendedCost(RawData, bytes*2, write, p)
			if c2 < c1 {
				return false
			}
			cp := d.ContendedCost(RawData, bytes, write, p+1)
			if cp < c1 {
				return false
			}
			meta := d.ContendedCost(Metadata, bytes, write, p)
			if meta < c1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
