// Package netcdf implements a classic-netCDF-like self-describing
// format: a single header region holding all dimensions, attributes and
// variable descriptors, followed by contiguous fixed-size variable data
// and interleaved record-variable data along one unlimited dimension.
//
// It is the second descriptive format the paper names (§I): its I/O
// behavior differs from the HDF5-like library in exactly the ways DaYu
// is built to expose - all metadata lives in one file region, fixed
// variables are fully contiguous, and record variables interleave so a
// single variable read becomes one operation per record. The package
// emits the same VOL events and VFD operation classes as internal/hdf5,
// so the Data Semantic Mapper and Workflow Analyzer work over netCDF
// files unchanged.
package netcdf

import (
	"errors"
	"fmt"
	"time"

	"dayu/internal/semantics"
	"dayu/internal/vfd"
	"dayu/internal/vol"
)

var (
	// ErrDefineMode is returned for data access before EndDef.
	ErrDefineMode = errors.New("netcdf: file is in define mode")
	// ErrDataMode is returned for definitions after EndDef.
	ErrDataMode = errors.New("netcdf: definitions are frozen after EndDef")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("netcdf: file is closed")
	// ErrNotFound is returned for unknown names.
	ErrNotFound = errors.New("netcdf: not found")
	// ErrCorrupt is returned when the on-disk header fails validation.
	// It wraps vfd.ErrCorrupt so corruption classifies uniformly across
	// format layers with errors.Is.
	ErrCorrupt = fmt.Errorf("netcdf: corrupt file: %w", vfd.ErrCorrupt)
)

// corruptf reports a malformed on-disk structure, typed as ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%s: %w", fmt.Sprintf(format, args...), ErrCorrupt)
}

// wrapRead classifies a failed driver read during parsing: out-of-bounds
// access driven by parsed geometry means the header is corrupt; other
// driver errors (transient faults, closed sessions) pass through so
// retry classification still sees them.
func wrapRead(err error, format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	if errors.Is(err, vfd.ErrOutOfBounds) {
		return fmt.Errorf("%s: %w: %w", msg, ErrCorrupt, err)
	}
	return fmt.Errorf("%s: %w", msg, err)
}

const (
	ncMagic = "CDF1"
	// UnlimitedDim is the length passed to DefineDim for the record
	// dimension.
	UnlimitedDim int64 = 0
)

// Type is a netCDF external type.
type Type uint8

// Classic netCDF external types.
const (
	Byte   Type = 1
	Short  Type = 2
	Int    Type = 4
	Float  Type = 5
	Double Type = 6
)

// Size returns the element size in bytes.
func (t Type) Size() int64 {
	switch t {
	case Byte:
		return 1
	case Short:
		return 2
	case Int, Float:
		return 4
	case Double:
		return 8
	}
	return 0
}

func (t Type) String() string {
	switch t {
	case Byte:
		return "byte"
	case Short:
		return "short"
	case Int:
		return "int"
	case Float:
		return "float"
	case Double:
		return "double"
	}
	return "unknown"
}

// DimID identifies a defined dimension.
type DimID int

type dim struct {
	name   string
	length int64 // 0 = unlimited
}

type attr struct {
	name  string
	typ   Type
	value []byte
}

// Var is a variable handle.
type Var struct {
	file      *File
	name      string
	typ       Type
	dimIDs    []DimID
	attrs     []attr
	begin     int64 // data start offset
	vsize     int64 // bytes per record (record vars) or total (fixed)
	recOffset int64 // offset within a record (record vars)
	isRecord  bool
}

// Config mirrors hdf5.Config: tracing hooks plus a time source.
type Config struct {
	Mailbox  *semantics.Mailbox
	Observer vol.Observer
	Task     string
	Now      func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// File is an open netCDF-like file.
type File struct {
	drv     vfd.Driver
	name    string
	cfg     Config
	dims    []dim
	gattrs  []attr
	vars    []*Var
	defMode bool
	open    bool
	numRecs int64
	recSize int64
	// header geometry
	headerCap int64
	dataStart int64
	recStart  int64
}

// Create starts a new file in define mode.
func Create(drv vfd.Driver, name string, cfg Config) (*File, error) {
	cfg = cfg.withDefaults()
	if err := drv.Truncate(0); err != nil {
		return nil, fmt.Errorf("netcdf: create %s: %w", name, err)
	}
	f := &File{drv: drv, name: name, cfg: cfg, defMode: true, open: true}
	f.event(vol.FileCreate, vol.ObjectInfo{Name: "/", Type: "file"}, 0)
	return f, nil
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// event emits a VOL event.
func (f *File) event(kind vol.EventKind, info vol.ObjectInfo, bytes int64) {
	if f.cfg.Observer == nil {
		return
	}
	info.File = f.name
	f.cfg.Observer.OnEvent(vol.Event{
		Kind: kind, Wall: f.cfg.Now(), Task: f.cfg.Task, Info: info, Bytes: bytes,
	})
}

func (f *File) stamp(object string) func() {
	if f.cfg.Mailbox == nil {
		return func() {}
	}
	return f.cfg.Mailbox.Enter(semantics.Context{Object: object, File: f.name, Task: f.cfg.Task})
}

// DefineDim defines a dimension; length UnlimitedDim declares the
// record dimension (at most one).
func (f *File) DefineDim(name string, length int64) (DimID, error) {
	if !f.open {
		return 0, ErrClosed
	}
	if !f.defMode {
		return 0, ErrDataMode
	}
	if name == "" || length < 0 {
		return 0, fmt.Errorf("netcdf: invalid dimension %q length %d", name, length)
	}
	for _, d := range f.dims {
		if d.name == name {
			return 0, fmt.Errorf("netcdf: dimension %q already defined", name)
		}
		if length == UnlimitedDim && d.length == UnlimitedDim {
			return 0, fmt.Errorf("netcdf: only one unlimited dimension allowed")
		}
	}
	f.dims = append(f.dims, dim{name: name, length: length})
	return DimID(len(f.dims) - 1), nil
}

// DefineVar defines a variable over previously defined dimensions. If
// the first dimension is the unlimited one the variable is a record
// variable.
func (f *File) DefineVar(name string, typ Type, dimIDs []DimID) (*Var, error) {
	if !f.open {
		return nil, ErrClosed
	}
	if !f.defMode {
		return nil, ErrDataMode
	}
	if name == "" || typ.Size() == 0 {
		return nil, fmt.Errorf("netcdf: invalid variable %q", name)
	}
	for _, v := range f.vars {
		if v.name == name {
			return nil, fmt.Errorf("netcdf: variable %q already defined", name)
		}
	}
	for i, id := range dimIDs {
		if int(id) < 0 || int(id) >= len(f.dims) {
			return nil, fmt.Errorf("netcdf: variable %q references unknown dimension %d", name, id)
		}
		if f.dims[id].length == UnlimitedDim && i != 0 {
			return nil, fmt.Errorf("netcdf: unlimited dimension must be the first dimension of %q", name)
		}
	}
	v := &Var{file: f, name: name, typ: typ, dimIDs: append([]DimID(nil), dimIDs...)}
	v.isRecord = len(dimIDs) > 0 && f.dims[dimIDs[0]].length == UnlimitedDim
	f.vars = append(f.vars, v)
	f.event(vol.DatasetCreate, v.info(), 0)
	return v, nil
}

// PutGlobalAttr sets a global attribute (define mode only).
func (f *File) PutGlobalAttr(name string, typ Type, value []byte) error {
	if !f.open {
		return ErrClosed
	}
	if !f.defMode {
		return ErrDataMode
	}
	f.gattrs = append(f.gattrs, attr{name: name, typ: typ, value: append([]byte(nil), value...)})
	return nil
}

// PutAttr sets a variable attribute (define mode only).
func (v *Var) PutAttr(name string, typ Type, value []byte) error {
	if !v.file.open {
		return ErrClosed
	}
	if !v.file.defMode {
		return ErrDataMode
	}
	v.attrs = append(v.attrs, attr{name: name, typ: typ, value: append([]byte(nil), value...)})
	return nil
}

// Name returns the variable name.
func (v *Var) Name() string { return v.name }

// Type returns the external type.
func (v *Var) Type() Type { return v.typ }

// Dims returns the variable's current shape (the record dimension
// reports the current record count).
func (v *Var) Dims() []int64 {
	out := make([]int64, len(v.dimIDs))
	for i, id := range v.dimIDs {
		if v.file.dims[id].length == UnlimitedDim {
			out[i] = v.file.numRecs
		} else {
			out[i] = v.file.dims[id].length
		}
	}
	return out
}

func (v *Var) info() vol.ObjectInfo {
	layout := "contiguous"
	if v.isRecord {
		layout = "record"
	}
	return vol.ObjectInfo{
		Name:     "/" + v.name,
		Type:     "dataset",
		Datatype: v.typ.String(),
		Shape:    v.Dims(),
		ElemSize: v.typ.Size(),
		Layout:   layout,
	}
}

// fixedElems returns the element count of the non-record dimensions.
func (v *Var) fixedElems() int64 {
	n := int64(1)
	for i, id := range v.dimIDs {
		if i == 0 && v.isRecord {
			continue
		}
		n *= v.file.dims[id].length
	}
	return n
}
