package netcdf

import (
	"math/rand"
	"testing"

	"dayu/internal/vfd"
)

func buildCorruptionTarget(t testing.TB) []byte {
	t.Helper()
	drv := vfd.NewMemDriver()
	f, err := Create(drv, "victim.nc", Config{})
	if err != nil {
		t.Fatal(err)
	}
	timeD, _ := f.DefineDim("time", UnlimitedDim)
	xD, _ := f.DefineDim("x", 8)
	fixed, err := f.DefineVar("coords", Double, []DimID{xD})
	if err != nil {
		t.Fatal(err)
	}
	if err := fixed.PutAttr("units", Byte, []byte("m")); err != nil {
		t.Fatal(err)
	}
	recVar, err := f.DefineVar("series", Float, []DimID{timeD, xD})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.PutGlobalAttr("title", Byte, []byte("t")); err != nil {
		t.Fatal(err)
	}
	if err := f.EndDef(); err != nil {
		t.Fatal(err)
	}
	if err := fixed.WriteAll(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	for rec := int64(0); rec < 4; rec++ {
		if err := recVar.Write([]int64{rec, 0}, []int64{1, 8}, make([]byte, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Close marked the session driver closed; recover the bytes.
	return drv.Bytes()
}

func exerciseFile(data []byte) {
	f, err := Open(vfd.NewMemDriverFrom(data), "victim.nc", Config{})
	if err != nil {
		return
	}
	for _, name := range f.VarNames() {
		v, err := f.VarByName(name)
		if err != nil {
			continue
		}
		_, _ = v.ReadAll()
		_, _, _ = v.Attr("units")
	}
	_, _, _ = f.GlobalAttr("title")
	_ = f.Close()
}

// TestCorruptionRobustness: damaged netCDF headers must fail cleanly,
// never panic or drive unbounded allocations.
func TestCorruptionRobustness(t *testing.T) {
	pristine := buildCorruptionTarget(t)
	rng := rand.New(rand.NewSource(5))
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("panic on corrupted file: %v", r)
		}
	}()
	for i := 0; i < len(pristine); i += 5 {
		data := append([]byte(nil), pristine...)
		data[i] ^= 0xff
		exerciseFile(data)
	}
	for round := 0; round < 200; round++ {
		data := append([]byte(nil), pristine...)
		for j := 0; j < 1+rng.Intn(12); j++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		exerciseFile(data)
	}
	for cut := 0; cut < len(pristine); cut += 11 {
		exerciseFile(append([]byte(nil), pristine[:cut]...))
	}
}
