package netcdf

import (
	"encoding/binary"
	"fmt"

	"dayu/internal/sim"
	"dayu/internal/vfd"
	"dayu/internal/vol"
)

const headerPrefix = 48 // magic(4) pad(4) len(8) cap(8) numrecs(8) datastart(8) recstart(8)

// EndDef freezes definitions, computes the data layout (fixed variables
// contiguous in definition order, record variables interleaved), and
// writes the header. This is the single all-metadata-up-front region
// that distinguishes classic netCDF from HDF5's scattered metadata.
func (f *File) EndDef() error {
	if !f.open {
		return ErrClosed
	}
	if !f.defMode {
		return ErrDataMode
	}
	// Size the header with slack, as netCDF's reserved header space.
	payload := f.serializeHeader()
	f.headerCap = int64(len(payload)+headerPrefix) * 2
	if f.headerCap < 1024 {
		f.headerCap = 1024
	}
	f.dataStart = f.headerCap

	// Fixed variables first.
	off := f.dataStart
	for _, v := range f.vars {
		if v.isRecord {
			continue
		}
		v.begin = off
		v.vsize = v.fixedElems() * v.typ.Size()
		off += v.vsize
	}
	// Record variables interleave after the fixed section.
	f.recStart = off
	f.recSize = 0
	for _, v := range f.vars {
		if !v.isRecord {
			continue
		}
		v.recOffset = f.recSize
		v.vsize = v.fixedElems() * v.typ.Size()
		f.recSize += v.vsize
		v.begin = f.recStart + v.recOffset
	}
	f.defMode = false
	return f.writeHeader()
}

func (f *File) serializeHeader() []byte {
	var b []byte
	u16 := func(v uint16) { b = binary.LittleEndian.AppendUint16(b, v) }
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	i64 := func(v int64) { b = binary.LittleEndian.AppendUint64(b, uint64(v)) }
	str := func(s string) { u16(uint16(len(s))); b = append(b, s...) }
	putAttrs := func(attrs []attr) {
		u32(uint32(len(attrs)))
		for _, a := range attrs {
			str(a.name)
			b = append(b, byte(a.typ))
			u32(uint32(len(a.value)))
			b = append(b, a.value...)
		}
	}
	u32(uint32(len(f.dims)))
	for _, d := range f.dims {
		str(d.name)
		i64(d.length)
	}
	putAttrs(f.gattrs)
	u32(uint32(len(f.vars)))
	for _, v := range f.vars {
		str(v.name)
		b = append(b, byte(v.typ))
		u16(uint16(len(v.dimIDs)))
		for _, id := range v.dimIDs {
			u32(uint32(id))
		}
		putAttrs(v.attrs)
		i64(v.begin)
		i64(v.vsize)
		i64(v.recOffset)
		if v.isRecord {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

// writeHeader persists the full header block (one metadata write).
func (f *File) writeHeader() error {
	payload := f.serializeHeader()
	if int64(len(payload)+headerPrefix) > f.headerCap {
		return fmt.Errorf("netcdf: header grew beyond its reserved space")
	}
	block := make([]byte, f.headerCap)
	copy(block, ncMagic)
	binary.LittleEndian.PutUint64(block[8:], uint64(len(payload)))
	binary.LittleEndian.PutUint64(block[16:], uint64(f.headerCap))
	binary.LittleEndian.PutUint64(block[24:], uint64(f.numRecs))
	binary.LittleEndian.PutUint64(block[32:], uint64(f.dataStart))
	binary.LittleEndian.PutUint64(block[40:], uint64(f.recStart))
	copy(block[headerPrefix:], payload)
	if err := f.drv.WriteAt(block, 0, sim.Metadata); err != nil {
		return fmt.Errorf("netcdf: write header: %w", err)
	}
	return nil
}

// Open reads an existing file's header and returns it in data mode.
func Open(drv vfd.Driver, name string, cfg Config) (*File, error) {
	cfg = cfg.withDefaults()
	f := &File{drv: drv, name: name, cfg: cfg, open: true}
	f.event(vol.FileOpen, vol.ObjectInfo{Name: "/", Type: "file"}, 0)

	prefix := make([]byte, headerPrefix)
	if err := drv.ReadAt(prefix, 0, sim.Metadata); err != nil {
		return nil, wrapRead(err, "netcdf: read header")
	}
	if string(prefix[:4]) != ncMagic {
		return nil, corruptf("netcdf: bad magic %q", prefix[:4])
	}
	plen := int64(binary.LittleEndian.Uint64(prefix[8:]))
	f.headerCap = int64(binary.LittleEndian.Uint64(prefix[16:]))
	f.numRecs = int64(binary.LittleEndian.Uint64(prefix[24:]))
	f.dataStart = int64(binary.LittleEndian.Uint64(prefix[32:]))
	f.recStart = int64(binary.LittleEndian.Uint64(prefix[40:]))
	if plen < 0 || plen > 16<<20 || f.headerCap < headerPrefix || f.headerCap > 32<<20 ||
		f.numRecs < 0 || f.numRecs > 1<<24 || f.dataStart < 0 || f.recStart < 0 {
		return nil, corruptf("netcdf: implausible header geometry")
	}
	payload := make([]byte, plen)
	if err := drv.ReadAt(payload, headerPrefix, sim.Metadata); err != nil {
		return nil, wrapRead(err, "netcdf: read header payload")
	}
	if err := f.parseHeader(payload); err != nil {
		return nil, err
	}
	f.recSize = 0
	for _, v := range f.vars {
		if v.isRecord {
			f.recSize += v.vsize
		}
	}
	return f, nil
}

func (f *File) parseHeader(b []byte) error {
	off := 0
	fail := func(what string) error {
		return corruptf("netcdf: truncated header at %s (offset %d)", what, off)
	}
	u16 := func() (uint16, bool) {
		if off+2 > len(b) {
			return 0, false
		}
		v := binary.LittleEndian.Uint16(b[off:])
		off += 2
		return v, true
	}
	u32 := func() (uint32, bool) {
		if off+4 > len(b) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(b[off:])
		off += 4
		return v, true
	}
	i64 := func() (int64, bool) {
		if off+8 > len(b) {
			return 0, false
		}
		v := int64(binary.LittleEndian.Uint64(b[off:]))
		off += 8
		return v, true
	}
	str := func() (string, bool) {
		n, ok := u16()
		if !ok || off+int(n) > len(b) {
			return "", false
		}
		s := string(b[off : off+int(n)])
		off += int(n)
		return s, true
	}
	getAttrs := func() ([]attr, bool) {
		n, ok := u32()
		if !ok || int(n) > len(b) { // each attr needs at least one byte
			return nil, false
		}
		attrs := make([]attr, 0, n)
		for i := uint32(0); i < n; i++ {
			var a attr
			if a.name, ok = str(); !ok {
				return nil, false
			}
			if off >= len(b) {
				return nil, false
			}
			a.typ = Type(b[off])
			off++
			vlen, ok := u32()
			if !ok || off+int(vlen) > len(b) {
				return nil, false
			}
			a.value = append([]byte(nil), b[off:off+int(vlen)]...)
			off += int(vlen)
			attrs = append(attrs, a)
		}
		return attrs, true
	}

	ndims, ok := u32()
	if !ok || int(ndims) > len(b) {
		return fail("dim count")
	}
	for i := uint32(0); i < ndims; i++ {
		var d dim
		if d.name, ok = str(); !ok {
			return fail("dim name")
		}
		if d.length, ok = i64(); !ok {
			return fail("dim length")
		}
		f.dims = append(f.dims, d)
	}
	if f.gattrs, ok = getAttrs(); !ok {
		return fail("global attributes")
	}
	nvars, ok := u32()
	if !ok || int(nvars) > len(b) {
		return fail("var count")
	}
	for i := uint32(0); i < nvars; i++ {
		v := &Var{file: f}
		if v.name, ok = str(); !ok {
			return fail("var name")
		}
		if off >= len(b) {
			return fail("var type")
		}
		v.typ = Type(b[off])
		off++
		nd, ok := u16()
		if !ok {
			return fail("var rank")
		}
		for j := uint16(0); j < nd; j++ {
			id, ok := u32()
			if !ok {
				return fail("var dim")
			}
			v.dimIDs = append(v.dimIDs, DimID(id))
		}
		if v.attrs, ok = getAttrs(); !ok {
			return fail("var attributes")
		}
		if v.begin, ok = i64(); !ok {
			return fail("var begin")
		}
		if v.vsize, ok = i64(); !ok {
			return fail("var vsize")
		}
		if v.recOffset, ok = i64(); !ok {
			return fail("var recOffset")
		}
		if off >= len(b) {
			return fail("var record flag")
		}
		v.isRecord = b[off] == 1
		off++
		f.vars = append(f.vars, v)
	}
	return f.sanityCheck()
}

// sanityCheck rejects parsed geometry that cannot be valid before any
// data access sizes a buffer from it.
func (f *File) sanityCheck() error {
	const maxExtent = int64(1) << 32
	const maxVarBytes = int64(1) << 31
	for _, d := range f.dims {
		if d.length < 0 || d.length > maxExtent {
			return corruptf("netcdf: implausible dimension %q length %d", d.name, d.length)
		}
	}
	for _, v := range f.vars {
		if v.typ.Size() == 0 {
			return corruptf("netcdf: variable %q has unknown type", v.name)
		}
		for i, id := range v.dimIDs {
			if int(id) < 0 || int(id) >= len(f.dims) {
				return corruptf("netcdf: variable %q references unknown dimension", v.name)
			}
			if f.dims[id].length == UnlimitedDim && i != 0 {
				return corruptf("netcdf: variable %q has a non-leading unlimited dimension", v.name)
			}
		}
		if v.begin < 0 || v.vsize < 0 || v.vsize > maxVarBytes || v.recOffset < 0 {
			return corruptf("netcdf: implausible layout for variable %q", v.name)
		}
		if v.vsize != v.fixedElems()*v.typ.Size() {
			return corruptf("netcdf: layout size mismatch for variable %q", v.name)
		}
	}
	return nil
}

// VarByName looks up a variable, emitting the open event.
func (f *File) VarByName(name string) (*Var, error) {
	if !f.open {
		return nil, ErrClosed
	}
	for _, v := range f.vars {
		if v.name == name {
			f.event(vol.DatasetOpen, v.info(), 0)
			return v, nil
		}
	}
	return nil, fmt.Errorf("%w: variable %s", ErrNotFound, name)
}

// VarNames lists the defined variables.
func (f *File) VarNames() []string {
	names := make([]string, len(f.vars))
	for i, v := range f.vars {
		names[i] = v.name
	}
	return names
}

// NumRecs returns the current record count.
func (f *File) NumRecs() int64 { return f.numRecs }

// Sync persists the record count to the header.
func (f *File) Sync() error {
	if !f.open {
		return ErrClosed
	}
	if f.defMode {
		return ErrDefineMode
	}
	return f.writeHeader()
}

// Close syncs (in data mode) and closes the driver.
func (f *File) Close() error {
	if !f.open {
		return nil
	}
	if !f.defMode {
		if err := f.writeHeader(); err != nil {
			return err
		}
	}
	f.open = false
	f.event(vol.FileClose, vol.ObjectInfo{Name: "/", Type: "file"}, 0)
	return f.drv.Close()
}
