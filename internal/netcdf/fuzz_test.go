package netcdf

import (
	"errors"
	"testing"

	"dayu/internal/vfd"
)

// FuzzOpen feeds arbitrary bytes to Open and the variable walk. The
// parser must never panic, and every Open rejection must be typed
// ErrCorrupt so tooling can distinguish damaged files from I/O faults.
func FuzzOpen(f *testing.F) {
	pristine := buildCorruptionTarget(f)
	f.Add(append([]byte(nil), pristine...))
	for _, i := range []int{0, 4, 8, len(pristine) / 2, len(pristine) - 1} {
		data := append([]byte(nil), pristine...)
		data[i] ^= 0xff
		f.Add(data)
	}
	f.Add(append([]byte(nil), pristine[:headerPrefix]...))
	f.Add(append([]byte(nil), pristine[:len(pristine)/3]...))
	f.Add([]byte{})
	f.Add([]byte(ncMagic))
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Open(vfd.NewMemDriverFrom(data), "fuzz.nc", Config{})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open rejected input with untyped error: %v", err)
			}
			return
		}
		_ = file.Close()
		exerciseFile(data)
	})
}
