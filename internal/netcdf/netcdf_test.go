package netcdf

import (
	"bytes"
	"errors"
	"testing"

	"dayu/internal/hdf5"
	"dayu/internal/tracer"
	"dayu/internal/vfd"
)

// buildClimateFile defines a classic climate-style file: fixed lat/lon
// coordinate variables plus a record variable temp(time, lat, lon).
func buildClimateFile(t *testing.T, drv vfd.Driver, cfg Config) *File {
	t.Helper()
	f, err := Create(drv, "climate.nc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	timeD, err := f.DefineDim("time", UnlimitedDim)
	if err != nil {
		t.Fatal(err)
	}
	latD, err := f.DefineDim("lat", 4)
	if err != nil {
		t.Fatal(err)
	}
	lonD, err := f.DefineDim("lon", 8)
	if err != nil {
		t.Fatal(err)
	}
	lat, err := f.DefineVar("lat", Double, []DimID{latD})
	if err != nil {
		t.Fatal(err)
	}
	if err := lat.PutAttr("units", Byte, []byte("degrees_north")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.DefineVar("lon", Double, []DimID{lonD}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.DefineVar("temp", Float, []DimID{timeD, latD, lonD}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.DefineVar("pressure", Float, []DimID{timeD, latD, lonD}); err != nil {
		t.Fatal(err)
	}
	if err := f.PutGlobalAttr("title", Byte, []byte("toy climate")); err != nil {
		t.Fatal(err)
	}
	if err := f.EndDef(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDefineModeRules(t *testing.T) {
	f, err := Create(vfd.NewMemDriver(), "x.nc", Config{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := f.DefineDim("d", 4)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.DefineVar("v", Int, []DimID{d})
	if err != nil {
		t.Fatal(err)
	}
	// Data access in define mode fails.
	if err := v.WriteAll(make([]byte, 16)); !errors.Is(err, ErrDefineMode) {
		t.Errorf("write in define mode: %v", err)
	}
	if err := f.EndDef(); err != nil {
		t.Fatal(err)
	}
	// Definitions in data mode fail.
	if _, err := f.DefineDim("late", 2); !errors.Is(err, ErrDataMode) {
		t.Errorf("define after EndDef: %v", err)
	}
	if _, err := f.DefineVar("late", Int, nil); !errors.Is(err, ErrDataMode) {
		t.Errorf("var after EndDef: %v", err)
	}
	if err := f.EndDef(); !errors.Is(err, ErrDataMode) {
		t.Errorf("double EndDef: %v", err)
	}
	// Invalid definitions.
	f2, _ := Create(vfd.NewMemDriver(), "y.nc", Config{})
	if _, err := f2.DefineDim("", 3); err == nil {
		t.Error("empty dim name accepted")
	}
	if _, err := f2.DefineDim("neg", -1); err == nil {
		t.Error("negative dim accepted")
	}
	u1, _ := f2.DefineDim("u1", UnlimitedDim)
	if _, err := f2.DefineDim("u2", UnlimitedDim); err == nil {
		t.Error("second unlimited dim accepted")
	}
	fix, _ := f2.DefineDim("fix", 2)
	if _, err := f2.DefineVar("bad", Int, []DimID{fix, u1}); err == nil {
		t.Error("unlimited dim in non-first position accepted")
	}
	if _, err := f2.DefineVar("bad2", Type(99), nil); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := f2.DefineVar("bad3", Int, []DimID{99}); err == nil {
		t.Error("unknown dim id accepted")
	}
}

func TestFixedVariableRoundTrip(t *testing.T) {
	drv := vfd.NewMemDriver()
	f := buildClimateFile(t, drv, Config{})
	lat, err := f.VarByName("lat")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4*8)
	for i := range data {
		data[i] = byte(i)
	}
	if err := lat.WriteAll(data); err != nil {
		t.Fatal(err)
	}
	got, err := lat.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fixed variable round trip failed")
	}
	// Partial slab.
	part, err := lat.Read([]int64{1}, []int64{2})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(part, data[8:24]) {
		t.Fatal("fixed slab read wrong")
	}
	// Attribute.
	val, typ, err := lat.Attr("units")
	if err != nil || typ != Byte || string(val) != "degrees_north" {
		t.Fatalf("attr = %q, %v, %v", val, typ, err)
	}
	if _, _, err := lat.Attr("missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing attr: %v", err)
	}
}

func TestRecordVariablesInterleaveAndPersist(t *testing.T) {
	drv := vfd.NewMemDriver()
	f := buildClimateFile(t, drv, Config{})
	temp, _ := f.VarByName("temp")
	pres, _ := f.VarByName("pressure")

	recBytes := 4 * 8 * 4 // lat*lon*sizeof(float)
	mkRec := func(fill byte) []byte { return bytes.Repeat([]byte{fill}, recBytes) }

	// Write three records of temp and two of pressure, out of order.
	for rec, fill := range map[int64]byte{0: 1, 1: 2, 2: 3} {
		if err := temp.Write([]int64{rec, 0, 0}, []int64{1, 4, 8}, mkRec(fill)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pres.Write([]int64{1, 0, 0}, []int64{1, 4, 8}, mkRec(9)); err != nil {
		t.Fatal(err)
	}
	if f.NumRecs() != 3 {
		t.Fatalf("numRecs = %d", f.NumRecs())
	}
	// Reading beyond records fails.
	if _, err := temp.Read([]int64{2, 0, 0}, []int64{2, 4, 8}); err == nil {
		t.Error("read past records succeeded")
	}
	got, err := temp.Read([]int64{1, 0, 0}, []int64{2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:recBytes], mkRec(2)) || !bytes.Equal(got[recBytes:], mkRec(3)) {
		t.Fatal("record read wrong")
	}
	// Pressure record 1 is intact despite temp interleaving.
	p, err := pres.Read([]int64{1, 0, 0}, []int64{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, mkRec(9)) {
		t.Fatal("interleaved record corrupted")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify everything persisted, including record count.
	f2, err := Open(vfd.NewMemDriverFrom(append([]byte(nil), drv.Bytes()...)), "climate.nc", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if f2.NumRecs() != 3 {
		t.Fatalf("reopened numRecs = %d", f2.NumRecs())
	}
	temp2, err := f2.VarByName("temp")
	if err != nil {
		t.Fatal(err)
	}
	if dims := temp2.Dims(); dims[0] != 3 || dims[1] != 4 || dims[2] != 8 {
		t.Fatalf("reopened dims = %v", dims)
	}
	got2, err := temp2.Read([]int64{0, 0, 0}, []int64{1, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, mkRec(1)) {
		t.Fatal("record 0 lost across reopen")
	}
	if val, _, err := f2.GlobalAttr("title"); err != nil || string(val) != "toy climate" {
		t.Fatalf("global attr lost: %q, %v", val, err)
	}
	if len(f2.VarNames()) != 4 {
		t.Fatalf("vars = %v", f2.VarNames())
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	if _, err := Open(vfd.NewMemDriverFrom(make([]byte, 256)), "bad.nc", Config{}); err == nil {
		t.Error("garbage opened")
	}
	if _, err := Open(vfd.NewMemDriver(), "empty.nc", Config{}); err == nil {
		t.Error("empty file opened")
	}
}

func TestSlabValidation(t *testing.T) {
	f := buildClimateFile(t, vfd.NewMemDriver(), Config{})
	lat, _ := f.VarByName("lat")
	if err := lat.Write([]int64{3}, []int64{2}, make([]byte, 16)); err == nil {
		t.Error("overflow slab accepted")
	}
	if err := lat.Write([]int64{0}, []int64{2}, make([]byte, 3)); err == nil {
		t.Error("short buffer accepted")
	}
	if err := lat.Write([]int64{0, 0}, []int64{1, 1}, make([]byte, 8)); err == nil {
		t.Error("rank mismatch accepted")
	}
	temp, _ := f.VarByName("temp")
	if err := temp.WriteAll(nil); err == nil {
		t.Error("WriteAll on record variable accepted")
	}
}

// TestDaYuTracesNetCDF proves the cross-format claim: the same Data
// Semantic Mapper observes netCDF I/O, attributes operations to
// variables, and distinguishes the single header metadata region.
func TestDaYuTracesNetCDF(t *testing.T) {
	tr := tracer.New(tracer.Config{})
	tr.BeginTask("climate_task")
	drv := tr.WrapDriver(vfd.NewMemDriver(), "climate.nc")
	f := buildClimateFile(t, drv, Config{
		Mailbox: tr.Mailbox(), Observer: tr.VOLObserver(), Task: "climate_task",
	})
	temp, err := f.VarByName("temp")
	if err != nil {
		t.Fatal(err)
	}
	recBytes := 4 * 8 * 4
	for rec := int64(0); rec < 5; rec++ {
		if err := temp.Write([]int64{rec, 0, 0}, []int64{1, 4, 8},
			bytes.Repeat([]byte{byte(rec)}, recBytes)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := temp.Read([]int64{0, 0, 0}, []int64{5, 4, 8}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tt := tr.EndTask()
	if err := tt.Validate(); err != nil {
		t.Fatal(err)
	}

	// Table I: temp appears with its record layout.
	var tempObj bool
	for _, o := range tt.Objects {
		if o.Object == "/temp" {
			tempObj = true
			if o.Datatype != "float" || o.Layout != "record" {
				t.Errorf("temp description: %+v", o)
			}
			if o.Writes != 5 || o.Reads != 1 {
				t.Errorf("temp accesses: r%d w%d", o.Reads, o.Writes)
			}
		}
	}
	if !tempObj {
		t.Fatal("no object record for /temp")
	}
	// Characteristic Mapper: temp's I/O attributed; record access is
	// strided (one op per record), so >= 10 data ops for 5w+5r records.
	for _, ms := range tt.Mapped {
		if ms.Object == "/temp" {
			if ms.DataOps < 10 {
				t.Errorf("temp data ops = %d, want >= 10 (strided records)", ms.DataOps)
			}
			if ms.MetaOps != 0 {
				t.Errorf("temp charged %d metadata ops; netCDF metadata is all in the header", ms.MetaOps)
			}
		}
		// Header traffic is unattributed metadata at file offset 0.
		if ms.Object == "" {
			if ms.MetaOps == 0 || ms.Regions[0].Start != 0 {
				t.Errorf("header stats wrong: %+v", ms)
			}
		}
	}
	if len(tt.Files) != 1 || tt.Files[0].MetaOps == 0 {
		t.Fatal("file record missing header metadata ops")
	}
}

// TestNetCDFVsHDF5MetadataShape verifies the structural difference DaYu
// should expose: netCDF concentrates metadata in one region while the
// HDF5-like format scatters it across the file.
func TestNetCDFVsHDF5MetadataShape(t *testing.T) {
	// netCDF: all metadata extents at the file head.
	tr := tracer.New(tracer.Config{})
	tr.BeginTask("nc")
	ncDrv := tr.WrapDriver(vfd.NewMemDriver(), "m.nc")
	nc := buildClimateFile(t, ncDrv, Config{Mailbox: tr.Mailbox(), Observer: tr.VOLObserver(), Task: "nc"})
	lat, _ := nc.VarByName("lat")
	if err := lat.WriteAll(make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if err := nc.Close(); err != nil {
		t.Fatal(err)
	}
	ncTrace := tr.EndTask()
	var ncMetaEnd int64
	for _, ms := range ncTrace.Mapped {
		if ms.Object == "" {
			for _, ext := range ms.Regions {
				if ext.End > ncMetaEnd {
					ncMetaEnd = ext.End
				}
			}
		}
	}
	if ncMetaEnd > 2048 {
		t.Errorf("netCDF metadata extends to %d; expected a compact header region", ncMetaEnd)
	}

	// HDF5: per-object headers scatter metadata through the file.
	tr2 := tracer.New(tracer.Config{})
	tr2.BeginTask("h5")
	h5Drv := tr2.WrapDriver(vfd.NewMemDriver(), "m.h5")
	h5, err := hdf5.Create(h5Drv, "m.h5", hdf5.Config{
		Mailbox: tr2.Mailbox(), Observer: tr2.VOLObserver(), Task: "h5",
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		ds, err := h5.Root().CreateDataset(name, hdf5.Float64, []int64{512}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.WriteAll(make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h5.Close(); err != nil {
		t.Fatal(err)
	}
	h5Trace := tr2.EndTask()
	var h5MetaEnd int64
	for _, fr := range h5Trace.Files {
		_ = fr
	}
	for _, ms := range h5Trace.Mapped {
		if ms.MetaOps > 0 {
			for _, ext := range ms.Regions {
				if ext.End > h5MetaEnd {
					h5MetaEnd = ext.End
				}
			}
		}
	}
	if h5MetaEnd <= 4096 {
		t.Errorf("HDF5 metadata ends at %d; expected scattered object headers", h5MetaEnd)
	}
}
