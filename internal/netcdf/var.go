package netcdf

import (
	"fmt"

	"dayu/internal/sim"
	"dayu/internal/vol"
)

// hyperslab validation and run decomposition over the variable's
// non-record dimensions.

func (v *Var) validate(start, count []int64, forWrite bool) error {
	if len(start) != len(v.dimIDs) || len(count) != len(v.dimIDs) {
		return fmt.Errorf("netcdf: %s: slab rank %d/%d does not match rank %d",
			v.name, len(start), len(count), len(v.dimIDs))
	}
	for i, id := range v.dimIDs {
		if start[i] < 0 || count[i] <= 0 {
			return fmt.Errorf("netcdf: %s: invalid slab dim %d", v.name, i)
		}
		length := v.file.dims[id].length
		if length == UnlimitedDim {
			// Writes may extend the record dimension; reads may not.
			if !forWrite && start[i]+count[i] > v.file.numRecs {
				return fmt.Errorf("netcdf: %s: record slab [%d,%d) beyond %d records",
					v.name, start[i], start[i]+count[i], v.file.numRecs)
			}
			continue
		}
		if start[i]+count[i] > length {
			return fmt.Errorf("netcdf: %s: slab dim %d [%d,%d) exceeds extent %d",
				v.name, i, start[i], start[i]+count[i], length)
		}
	}
	return nil
}

// maxSlabBytes bounds a single hyperslab transfer, protecting against
// corrupted geometry driving unbounded allocations.
const maxSlabBytes = int64(1) << 28

func slabElems(count []int64) int64 {
	n := int64(1)
	for _, c := range count {
		n *= c
	}
	return n
}

// fixedRuns decomposes a slab over the variable's trailing len(start)
// dimensions into contiguous element runs (offsets relative to the
// slab space origin). Record variables pass their non-record suffix.
func (v *Var) fixedRuns(start, count []int64) []run {
	ids := v.dimIDs[len(v.dimIDs)-len(start):]
	dims := make([]int64, len(start))
	for i, id := range ids {
		dims[i] = v.file.dims[id].length
	}
	return decompose(dims, start, count)
}

type run struct{ start, count int64 }

func decompose(dims, start, count []int64) []run {
	n := len(dims)
	if n == 0 {
		return []run{{0, 1}}
	}
	idx := append([]int64(nil), start...)
	var out []run
	for {
		var lin int64
		for i := range dims {
			lin = lin*dims[i] + idx[i]
		}
		r := run{start: lin, count: count[n-1]}
		if k := len(out) - 1; k >= 0 && out[k].start+out[k].count == r.start {
			out[k].count += r.count
		} else {
			out = append(out, r)
		}
		d := n - 2
		for d >= 0 {
			idx[d]++
			if idx[d] < start[d]+count[d] {
				break
			}
			idx[d] = start[d]
			d--
		}
		if d < 0 {
			return out
		}
	}
}

// Write stores a hyperslab. For record variables the first start/count
// pair addresses records; writing past the current record count extends
// the file, and each record becomes at least one separate I/O operation
// (the interleaved layout's strided access).
func (v *Var) Write(start, count []int64, data []byte) error {
	f := v.file
	if !f.open {
		return ErrClosed
	}
	if f.defMode {
		return ErrDefineMode
	}
	if err := v.validate(start, count, true); err != nil {
		return err
	}
	want := slabElems(count) * v.typ.Size()
	if int64(len(data)) != want {
		return fmt.Errorf("netcdf: %s: have %d bytes, slab needs %d", v.name, len(data), want)
	}
	exit := f.stamp("/" + v.name)
	defer exit()

	es := v.typ.Size()
	if !v.isRecord {
		var off int64
		for _, r := range v.fixedRuns(start, count) {
			n := r.count * es
			if err := f.drv.WriteAt(data[off:off+n], v.begin+r.start*es, sim.RawData); err != nil {
				return fmt.Errorf("netcdf: write %s: %w", v.name, err)
			}
			off += n
		}
	} else {
		var off int64
		for rec := start[0]; rec < start[0]+count[0]; rec++ {
			base := f.recStart + rec*f.recSize + v.recOffset
			for _, r := range v.fixedRuns(start[1:], count[1:]) {
				n := r.count * es
				if err := f.drv.WriteAt(data[off:off+n], base+r.start*es, sim.RawData); err != nil {
					return fmt.Errorf("netcdf: write %s record %d: %w", v.name, rec, err)
				}
				off += n
			}
			if rec+1 > f.numRecs {
				f.numRecs = rec + 1
			}
		}
	}
	f.event(vol.DatasetWrite, v.info(), int64(len(data)))
	return nil
}

// Read fetches a hyperslab.
func (v *Var) Read(start, count []int64) ([]byte, error) {
	f := v.file
	if !f.open {
		return nil, ErrClosed
	}
	if f.defMode {
		return nil, ErrDefineMode
	}
	if err := v.validate(start, count, false); err != nil {
		return nil, err
	}
	want := slabElems(count) * v.typ.Size()
	if want < 0 || want > maxSlabBytes {
		return nil, fmt.Errorf("netcdf: %s: implausible read size %d", v.name, want)
	}
	out := make([]byte, want)
	exit := f.stamp("/" + v.name)
	defer exit()

	es := v.typ.Size()
	if !v.isRecord {
		var off int64
		for _, r := range v.fixedRuns(start, count) {
			n := r.count * es
			if err := f.drv.ReadAt(out[off:off+n], v.begin+r.start*es, sim.RawData); err != nil {
				return nil, fmt.Errorf("netcdf: read %s: %w", v.name, err)
			}
			off += n
		}
	} else {
		var off int64
		for rec := start[0]; rec < start[0]+count[0]; rec++ {
			base := f.recStart + rec*f.recSize + v.recOffset
			for _, r := range v.fixedRuns(start[1:], count[1:]) {
				n := r.count * es
				if err := f.drv.ReadAt(out[off:off+n], base+r.start*es, sim.RawData); err != nil {
					return nil, fmt.Errorf("netcdf: read %s record %d: %w", v.name, rec, err)
				}
				off += n
			}
		}
	}
	f.event(vol.DatasetRead, v.info(), int64(len(out)))
	return out, nil
}

// WriteAll writes the whole fixed variable (not valid for record vars).
func (v *Var) WriteAll(data []byte) error {
	if v.isRecord {
		return fmt.Errorf("netcdf: %s: WriteAll on a record variable", v.name)
	}
	start := make([]int64, len(v.dimIDs))
	return v.Write(start, v.Dims(), data)
}

// ReadAll reads the whole variable (record vars read all records).
func (v *Var) ReadAll() ([]byte, error) {
	start := make([]int64, len(v.dimIDs))
	return v.Read(start, v.Dims())
}

// Attr returns a variable attribute value.
func (v *Var) Attr(name string) ([]byte, Type, error) {
	for _, a := range v.attrs {
		if a.name == name {
			v.file.event(vol.AttrRead, vol.ObjectInfo{
				Name: "/" + v.name + "@" + name, Type: "attribute", Datatype: a.typ.String(),
			}, int64(len(a.value)))
			return append([]byte(nil), a.value...), a.typ, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: attribute %s of %s", ErrNotFound, name, v.name)
}

// GlobalAttr returns a global attribute value.
func (f *File) GlobalAttr(name string) ([]byte, Type, error) {
	for _, a := range f.gattrs {
		if a.name == name {
			return append([]byte(nil), a.value...), a.typ, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: global attribute %s", ErrNotFound, name)
}
